/**
 * @file
 * QosArbiter: schedules the shared Compress_Request_Queue across
 * tenants.
 *
 * Every tREFI the NMA serves a small, fixed budget of conditional
 * accesses inside the refresh window (paper Sec. 5), so the slots a
 * window can start are the contended resource. The arbiter paces
 * tenant offload submissions to that cadence: each dispatch window
 * it releases up to slotsPerWindow queued operations, serving the
 * latency-sensitive class first (preempting batch tenants) and
 * dividing the remainder over batch tenants with weighted
 * round-robin (deficit counters). A reserved minimum of batch slots
 * per window keeps batch tenants starvation-free no matter how much
 * latency-class work is backlogged.
 */

#ifndef XFM_SERVICE_QOS_ARBITER_HH
#define XFM_SERVICE_QOS_ARBITER_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "health/health.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "service/tenant.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace service
{

/** Arbiter tuning. */
struct QosArbiterConfig
{
    /** Dispatch period; align with the device's tREFI. */
    Tick window = microseconds(3.9);
    /** Offload submissions released per window (the shared
     *  conditional-access budget). */
    std::uint32_t slotsPerWindow = 4;
    /**
     * Slots per window reserved for the batch class while batch work
     * is queued — the starvation-freedom guarantee. Must be below
     * slotsPerWindow.
     */
    std::uint32_t minBatchSlots = 1;

    // --- Adversarial-refresh defense (all default-off: a default
    // --- arbiter behaves byte-identically to the pre-defense one).
    /**
     * Hard slot isolation: this fraction of slotsPerWindow is
     * granted round-robin across tenants before RFM slot steals
     * shrink the window, so no tenant can be starved to zero by
     * another's refresh pressure. 0 disables the reserved pass.
     */
    double reservedSlotFrac = 0.0;
    /**
     * Slot-debt ledger: RFM steals attributed to a tenant charge
     * that tenant's own future grants (its per-window quota is
     * suppressed until the debt is repaid) instead of shrinking the
     * shared window. Unattributed (host) steals still shrink it.
     */
    bool slotDebt = false;
    /** Arm the windowed z-score abuse detector. */
    bool abuseEnabled = false;
    /** Dispatch windows per abuse-detector evaluation. */
    std::uint32_t abuseWindows = 64;
    /**
     * z-score at/above which a tenant's RFM-induced slot loss is an
     * outlier. For one attacker among N tenants the attainable
     * z is sqrt(N-1) (~1.73 at N=4), so keep this below that.
     */
    double abuseZ = 1.5;
    /** Minimum slots of RFM loss per evaluation before a tenant can
     *  be flagged (absolute floor under the z-score). */
    double abuseMinLoss = 4.0;
    /** Consecutive flagged evaluations before escalation. */
    std::uint32_t abuseConsecutive = 2;
    /** Throttle cooldown (HealthMonitor Failed -> Probation). */
    Tick abuseCooldown = microseconds(50.0);

    /** True when any defense feature changes behaviour. */
    bool
    defenseArmed() const
    {
        return reservedSlotFrac > 0.0 || slotDebt || abuseEnabled;
    }

    /**
     * Parse the qos.* keys of a Config (missing keys = defaults):
     *   qos.slots_per_window, qos.min_batch_slots,
     *   qos.reserved_slot_frac, qos.slot_debt, qos.abuse_enabled,
     *   qos.abuse_windows, qos.abuse_z, qos.abuse_min_loss,
     *   qos.abuse_consecutive, qos.abuse_cooldown_ns.
     * @throws FatalError on an unknown key under qos.
     */
    static QosArbiterConfig fromConfig(const Config &cfg);
};

/** Per-tenant arbiter statistics. */
struct ArbiterLaneStats
{
    std::uint64_t enqueued = 0;
    std::uint64_t dispatched = 0;
    stats::Average waitNs;  ///< queueing delay before dispatch
    /** Slot loss this tenant's activity caused via RFMs. */
    std::uint64_t rfmLoss = 0;
    /** Abuse-detector evaluations that flagged this tenant. */
    std::uint64_t abuseFlags = 0;
};

/** Whole-arbiter statistics. */
struct QosArbiterStats
{
    std::uint64_t windows = 0;
    std::uint64_t dispatched = 0;
    /** Slots granted to latency tenants while batch work waited. */
    std::uint64_t preemptions = 0;
    /** Windows that ended with unused slots and work still queued
     *  (per-tenant slot quotas throttled everyone). */
    std::uint64_t throttledWindows = 0;
    /** Service slots destroyed by RFM commands. */
    std::uint64_t rfmStolenSlots = 0;
    /** Slots repaid from tenants' RFM debt ledgers. */
    std::uint64_t debtCharged = 0;
    /** Grants made by the reserved hard-isolation pass. */
    std::uint64_t reservedGrants = 0;
    /** Abuse-detector evaluations run. */
    std::uint64_t abuseEvals = 0;
    /** Tenant flaggings across all evaluations. */
    std::uint64_t abuseFlags = 0;
    /** Throttle escalations (forceFail / probation re-trips). */
    std::uint64_t abuseEscalations = 0;
};

/**
 * Weighted, class-aware dispatcher over per-tenant job queues.
 *
 * Jobs are opaque closures; the service enqueues backend operations
 * and the tests enqueue counters, so fairness is testable without a
 * memory system behind it.
 */
class QosArbiter : public SimObject
{
  public:
    using Job = std::function<void()>;

    QosArbiter(std::string name, EventQueue &eq,
               const QosArbiterConfig &cfg);

    /** Register a tenant lane before any enqueue for it. */
    void addTenant(TenantId id, PriorityClass cls,
                   std::uint32_t weight, std::uint32_t slot_quota);

    /** Begin the dispatch-window loop. */
    void start();

    /** Queue a job on the tenant's lane. */
    void enqueue(TenantId id, Job job);

    /**
     * An RFM stole @p slots of NMA service capacity, attributed to
     * @p culprit (invalidTenant for host/unattributed activity).
     * With the defense off the steal shrinks the next dispatch
     * windows for everyone; with the slot-debt ledger on, an
     * attributed steal charges the culprit's own future grants.
     */
    void noteRfmSteal(std::uint32_t slots, TenantId culprit);

    /** True while the abuse detector holds @p id throttled. */
    bool abuseThrottled(TenantId id);

    /** Outstanding slot debt of @p id (0 unless slotDebt is on). */
    std::uint64_t slotDebt(TenantId id) const;

    /** Abuse-detector health monitor of @p id (enabled only when
     *  cfg.abuseEnabled; used for metrics and tests). */
    health::HealthMonitor &abuseMonitor(TenantId id);

    /** Attach a span tracer (null detaches): RFM slot steals then
     *  emit Stage::SlotSteal points on a lazily-made timeline. */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    std::size_t queued() const;
    std::size_t queued(TenantId id) const;

    const ArbiterLaneStats &laneStats(TenantId id) const;
    const QosArbiterStats &stats() const { return stats_; }
    const QosArbiterConfig &config() const { return cfg_; }

    /**
     * Pre-size the lane table so ArbiterLaneStats addresses stay
     * stable across addTenant (required before registerLaneMetrics
     * hands lane pointers to a registry).
     */
    void reserveLanes(std::size_t n) { lanes_.reserve(n); }

    /** Register whole-arbiter metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);

    /** Register one lane's metrics under `<prefix>.arbiter.*`. */
    void registerLaneMetrics(obs::MetricRegistry &r, TenantId id,
                             const std::string &prefix);

  private:
    struct Pending
    {
        Job job;
        Tick enqueued;
    };

    struct Lane
    {
        TenantId id;
        PriorityClass cls;
        std::uint32_t weight;
        std::uint32_t slotQuota;
        std::deque<Pending> q;
        double deficit = 0.0;  ///< WRR credit (batch lanes)
        std::uint32_t grantedThisWindow = 0;
        /** slotQuota minus this window's debt repayment. */
        std::uint32_t quotaThisWindow = 0;
        /** Outstanding RFM slot debt (slotDebt ledger). */
        std::uint64_t debt = 0;
        /** RFM slot loss caused since the last abuse evaluation. */
        std::uint64_t rfmLossEval = 0;
        /** Consecutive evaluations this lane was flagged. */
        std::uint32_t flaggedStreak = 0;
        /** Throttle/probation state machine (abuseEnabled only). */
        health::HealthMonitor monitor;
        ArbiterLaneStats stats;
    };

    void window();
    void dispatch(Lane &lane);
    /** Batch work queued on any non-throttled lane? */
    bool batchWaiting(const std::vector<char> &blocked) const;
    /** Throttled by the abuse detector right now? */
    bool laneBlocked(Lane &l);
    void evaluateAbuse(Tick now);
    Lane &lane(TenantId id);
    const Lane &lane(TenantId id) const;

    QosArbiterConfig cfg_;
    std::vector<Lane> lanes_;
    std::unordered_map<TenantId, std::size_t> index_;
    std::size_t latency_rr_ = 0;  ///< rotation among latency lanes
    std::size_t batch_rr_ = 0;    ///< rotation among batch lanes
    std::size_t reserved_rr_ = 0; ///< rotation for the reserved pass
    /** Stolen slots not yet deducted from a window (with slotDebt
     *  on, only unattributed steals land here). */
    std::uint64_t pending_steal_ = 0;
    std::uint32_t windows_since_eval_ = 0;
    bool started_ = false;
    obs::Tracer *tracer_ = nullptr;
    std::uint64_t trace_req_ = 0;  ///< lazy slot-steal timeline

    QosArbiterStats stats_;
};

} // namespace service
} // namespace xfm

#endif // XFM_SERVICE_QOS_ARBITER_HH
