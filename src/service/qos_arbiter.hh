/**
 * @file
 * QosArbiter: schedules the shared Compress_Request_Queue across
 * tenants.
 *
 * Every tREFI the NMA serves a small, fixed budget of conditional
 * accesses inside the refresh window (paper Sec. 5), so the slots a
 * window can start are the contended resource. The arbiter paces
 * tenant offload submissions to that cadence: each dispatch window
 * it releases up to slotsPerWindow queued operations, serving the
 * latency-sensitive class first (preempting batch tenants) and
 * dividing the remainder over batch tenants with weighted
 * round-robin (deficit counters). A reserved minimum of batch slots
 * per window keeps batch tenants starvation-free no matter how much
 * latency-class work is backlogged.
 */

#ifndef XFM_SERVICE_QOS_ARBITER_HH
#define XFM_SERVICE_QOS_ARBITER_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/registry.hh"
#include "service/tenant.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace service
{

/** Arbiter tuning. */
struct QosArbiterConfig
{
    /** Dispatch period; align with the device's tREFI. */
    Tick window = microseconds(3.9);
    /** Offload submissions released per window (the shared
     *  conditional-access budget). */
    std::uint32_t slotsPerWindow = 4;
    /**
     * Slots per window reserved for the batch class while batch work
     * is queued — the starvation-freedom guarantee. Must be below
     * slotsPerWindow.
     */
    std::uint32_t minBatchSlots = 1;
};

/** Per-tenant arbiter statistics. */
struct ArbiterLaneStats
{
    std::uint64_t enqueued = 0;
    std::uint64_t dispatched = 0;
    stats::Average waitNs;  ///< queueing delay before dispatch
};

/** Whole-arbiter statistics. */
struct QosArbiterStats
{
    std::uint64_t windows = 0;
    std::uint64_t dispatched = 0;
    /** Slots granted to latency tenants while batch work waited. */
    std::uint64_t preemptions = 0;
    /** Windows that ended with unused slots and work still queued
     *  (per-tenant slot quotas throttled everyone). */
    std::uint64_t throttledWindows = 0;
};

/**
 * Weighted, class-aware dispatcher over per-tenant job queues.
 *
 * Jobs are opaque closures; the service enqueues backend operations
 * and the tests enqueue counters, so fairness is testable without a
 * memory system behind it.
 */
class QosArbiter : public SimObject
{
  public:
    using Job = std::function<void()>;

    QosArbiter(std::string name, EventQueue &eq,
               const QosArbiterConfig &cfg);

    /** Register a tenant lane before any enqueue for it. */
    void addTenant(TenantId id, PriorityClass cls,
                   std::uint32_t weight, std::uint32_t slot_quota);

    /** Begin the dispatch-window loop. */
    void start();

    /** Queue a job on the tenant's lane. */
    void enqueue(TenantId id, Job job);

    std::size_t queued() const;
    std::size_t queued(TenantId id) const;

    const ArbiterLaneStats &laneStats(TenantId id) const;
    const QosArbiterStats &stats() const { return stats_; }
    const QosArbiterConfig &config() const { return cfg_; }

    /**
     * Pre-size the lane table so ArbiterLaneStats addresses stay
     * stable across addTenant (required before registerLaneMetrics
     * hands lane pointers to a registry).
     */
    void reserveLanes(std::size_t n) { lanes_.reserve(n); }

    /** Register whole-arbiter metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);

    /** Register one lane's metrics under `<prefix>.arbiter.*`. */
    void registerLaneMetrics(obs::MetricRegistry &r, TenantId id,
                             const std::string &prefix);

  private:
    struct Pending
    {
        Job job;
        Tick enqueued;
    };

    struct Lane
    {
        TenantId id;
        PriorityClass cls;
        std::uint32_t weight;
        std::uint32_t slotQuota;
        std::deque<Pending> q;
        double deficit = 0.0;  ///< WRR credit (batch lanes)
        std::uint32_t grantedThisWindow = 0;
        ArbiterLaneStats stats;
    };

    void window();
    void dispatch(Lane &lane);
    bool batchWaiting() const;
    Lane &lane(TenantId id);
    const Lane &lane(TenantId id) const;

    QosArbiterConfig cfg_;
    std::vector<Lane> lanes_;
    std::unordered_map<TenantId, std::size_t> index_;
    std::size_t latency_rr_ = 0;  ///< rotation among latency lanes
    std::size_t batch_rr_ = 0;    ///< rotation among batch lanes
    bool started_ = false;

    QosArbiterStats stats_;
};

} // namespace service
} // namespace xfm

#endif // XFM_SERVICE_QOS_ARBITER_HH
