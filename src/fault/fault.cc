#include "fault.hh"

#include "common/logging.hh"

namespace xfm
{
namespace fault
{

namespace
{

constexpr std::array<const char *, faultSiteCount> siteNames = {
    "ecc_correctable", "ecc_uncorrectable", "spm_reserve",
    "spm_watermark",   "engine_stall",      "mmio_doorbell",
    "dfm_delay",       "dfm_drop",
};

} // namespace

const char *
faultSiteName(FaultSite site)
{
    const auto idx = static_cast<std::size_t>(site);
    XFM_ASSERT(idx < faultSiteCount, "invalid fault site ", idx);
    return siteNames[idx];
}

bool
FaultPlan::anyArmed() const
{
    for (const auto &t : sites)
        if (t.armed())
            return true;
    return false;
}

FaultPlan
FaultPlan::fromConfig(const Config &cfg)
{
    FaultPlan plan;
    plan.seed = cfg.getU64("fault.seed", plan.seed);
    plan.spmHighWatermark =
        cfg.getDouble("fault.spm_watermark", plan.spmHighWatermark);
    if (cfg.has("fault.dfm_delay_ns"))
        plan.dfmDelayPenalty = nanoseconds(
            cfg.getDouble("fault.dfm_delay_ns"));
    XFM_ASSERT(plan.spmHighWatermark > 0.0
                   && plan.spmHighWatermark <= 1.0,
               "fault.spm_watermark must be in (0, 1]");

    for (std::size_t s = 0; s < faultSiteCount; ++s) {
        const std::string base =
            std::string("fault.") + siteNames[s] + ".";
        SiteTrigger &t = plan.sites[s];
        t.probability = cfg.getDouble(base + "p", t.probability);
        t.oneShotAt = cfg.getU64(base + "one_shot", t.oneShotAt);
        t.maxTriggers = cfg.getU64(base + "max", t.maxTriggers);
        if (t.probability < 0.0 || t.probability > 1.0)
            fatal(base, "p must be a probability in [0, 1]");
    }

    // Typos in fault.* keys would silently disarm a scenario the
    // test author believes is active; reject them.
    for (const auto &key : cfg.keys()) {
        if (key.rfind("fault.", 0) != 0)
            continue;
        if (key == "fault.seed" || key == "fault.spm_watermark"
            || key == "fault.dfm_delay_ns")
            continue;
        bool known = false;
        for (std::size_t s = 0; s < faultSiteCount && !known; ++s) {
            const std::string base =
                std::string("fault.") + siteNames[s] + ".";
            known = key == base + "p" || key == base + "one_shot"
                || key == base + "max";
        }
        if (!known)
            fatal("unknown fault-plan key '", key, "'");
    }
    return plan;
}

RetryPolicy
RetryPolicy::fromConfig(const Config &cfg)
{
    RetryPolicy policy;
    policy.maxAttempts = static_cast<std::uint32_t>(
        cfg.getU64("retry.max_attempts", policy.maxAttempts));
    if (cfg.has("retry.backoff_ns"))
        policy.backoffBase =
            nanoseconds(cfg.getDouble("retry.backoff_ns"));
    if (cfg.has("retry.cap_ns"))
        policy.backoffCap = nanoseconds(cfg.getDouble("retry.cap_ns"));
    XFM_ASSERT(policy.maxAttempts >= 1,
               "retry.max_attempts must be at least 1");
    return policy;
}

bool
FaultInjector::shouldInject(FaultSite site)
{
    if (!armed_)
        return false;
    const auto idx = static_cast<std::size_t>(site);
    const SiteTrigger &t = plan_.sites[idx];
    if (!t.armed())
        return false;

    SiteStats &st = stats_[idx];
    ++st.evaluations;
    if (t.maxTriggers != 0 && st.injections >= t.maxTriggers)
        return false;

    bool fire = false;
    if (t.oneShotAt != 0 && st.evaluations == t.oneShotAt)
        fire = true;
    else if (t.probability > 0.0 && rng_.chance(t.probability))
        fire = true;
    if (fire)
        ++st.injections;
    return fire;
}

std::uint64_t
FaultInjector::totalInjections() const
{
    std::uint64_t total = 0;
    for (const auto &st : stats_)
        total += st.injections;
    return total;
}

void
FaultInjector::registerMetrics(obs::MetricRegistry &r,
                               const std::string &prefix)
{
    for (std::size_t s = 0; s < faultSiteCount; ++s) {
        if (!plan_.sites[s].armed())
            continue;
        const std::string base =
            prefix + "." + siteNames[s] + ".";
        r.counter(base + "evaluations", &stats_[s].evaluations);
        r.counter(base + "injections", &stats_[s].injections);
    }
    r.derived(prefix + ".totalInjections",
              [this] {
                  return static_cast<double>(totalInjections());
              },
              "injections across all sites");
}

} // namespace fault
} // namespace xfm
