/**
 * @file
 * Deterministic fault injection for the XFM stack.
 *
 * XFM's correctness story rests on bounded degradation: when the SPM
 * fills, an offload misses its tRFC window, a doorbell write is
 * lost, or a DIMM misbehaves, the system must degrade to the CPU
 * path without corrupting a single page (paper Sec. 6, Fig. 12).
 * This subsystem makes those failure paths testable on demand:
 *
 *  - FaultPlan   — which sites fire, with what probability or at
 *                  which evaluation ordinal, parsed from the
 *                  standard key=value Config format;
 *  - FaultInjector — a seeded, deterministic evaluator components
 *                  query at each injection site;
 *  - per-site SiteStats — how often each site was evaluated and how
 *                  often it actually injected.
 *
 * Determinism: the injector draws from a single Rng seeded by the
 * plan, and the event queue orders all evaluations, so a (seed,
 * plan, workload) triple always produces the same fault sequence.
 * When a site is not armed, shouldInject() returns false without
 * consuming randomness or counting an evaluation, so a zero-fault
 * plan is behaviourally identical to a build without the subsystem.
 */

#ifndef XFM_FAULT_FAULT_HH
#define XFM_FAULT_FAULT_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "obs/registry.hh"

namespace xfm
{
namespace fault
{

/** Injection sites threaded through the stack. */
enum class FaultSite : std::uint32_t
{
    EccCorrectable,    ///< single-bit DRAM error (scrubbed)
    EccUncorrectable,  ///< double-bit DRAM error (poisons the page)
    SpmReserveFail,    ///< SPM allocation fails outright
    SpmHighWatermark,  ///< backpressure above the SPM watermark
    EngineStall,       ///< NMA engine stall/timeout; offload dropped
    MmioDoorbellLoss,  ///< doorbell write lost; device never sees it
    DfmLinkDelay,      ///< far-memory link latency spike
    DfmLinkDrop,       ///< far-memory link transfer dropped
};

constexpr std::size_t faultSiteCount = 8;

/** Stable lowercase identifier used in config keys and stats. */
const char *faultSiteName(FaultSite site);

/** Per-site trigger description. */
struct SiteTrigger
{
    /** Bernoulli probability of injecting per evaluation. */
    double probability = 0.0;
    /** Fire exactly on the Nth evaluation (1-based; 0 = off). */
    std::uint64_t oneShotAt = 0;
    /** Cap on total injections at this site (0 = unlimited). */
    std::uint64_t maxTriggers = 0;

    bool
    armed() const
    {
        return probability > 0.0 || oneShotAt > 0;
    }
};

/** Per-site evaluation/injection counters. */
struct SiteStats
{
    std::uint64_t evaluations = 0;
    std::uint64_t injections = 0;
};

/**
 * A complete fault scenario.
 *
 * Config keys (all optional; anything absent keeps its default):
 *
 *   fault.seed            = 7        # injector RNG seed
 *   fault.spm_watermark   = 0.875    # high-watermark fraction
 *   fault.dfm_delay_ns    = 2000     # link latency spike size
 *   fault.<site>.p        = 0.1      # per-evaluation probability
 *   fault.<site>.one_shot = 12       # fire on the Nth evaluation
 *   fault.<site>.max      = 3        # cap on injections
 *
 * where <site> is one of: ecc_correctable, ecc_uncorrectable,
 * spm_reserve, spm_watermark, engine_stall, mmio_doorbell,
 * dfm_delay, dfm_drop.
 */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::array<SiteTrigger, faultSiteCount> sites{};

    /** SPM occupancy fraction above which SpmHighWatermark applies. */
    double spmHighWatermark = 0.875;
    /** Extra latency a DfmLinkDelay injection adds to a transfer. */
    Tick dfmDelayPenalty = nanoseconds(2000.0);

    SiteTrigger &
    site(FaultSite s)
    {
        return sites[static_cast<std::size_t>(s)];
    }
    const SiteTrigger &
    site(FaultSite s) const
    {
        return sites[static_cast<std::size_t>(s)];
    }

    /** True if any site can ever fire. */
    bool anyArmed() const;

    /** Parse the fault.* keys of a Config (missing keys = defaults).
     *  @throws FatalError on an unknown site name under fault. */
    static FaultPlan fromConfig(const Config &cfg);
};

/**
 * Driver-style bounded retry with exponential backoff.
 *
 * Attempt k (0-based) that fails waits backoffFor(k) before the
 * next try; after maxAttempts total attempts the caller falls back
 * to the CPU path. maxAttempts = 1 degenerates to first-failure
 * fallback.
 *
 * Config keys: retry.max_attempts, retry.backoff_ns, retry.cap_ns.
 */
struct RetryPolicy
{
    std::uint32_t maxAttempts = 3;
    Tick backoffBase = nanoseconds(200.0);
    Tick backoffCap = microseconds(50.0);

    /**
     * Backoff after failed attempt @p attempt (0-based), saturated
     * at backoffCap. The shift is clamped against the base's leading
     * zero bits first: `backoffBase << attempt` would wrap (UB for
     * attempt >= 64, silent overflow before that) long before the
     * old `attempt < 63` guard kicked in for realistic bases.
     */
    Tick
    backoffFor(std::uint32_t attempt) const
    {
        if (backoffBase == 0)
            return 0;
        const auto headroom = static_cast<std::uint32_t>(
            std::countl_zero(backoffBase));
        if (attempt >= headroom)
            return backoffCap;
        const Tick raw = backoffBase << attempt;
        return raw < backoffCap ? raw : backoffCap;
    }

    static RetryPolicy fromConfig(const Config &cfg);
};

/**
 * Seeded evaluator components query at each injection site.
 *
 * A default-constructed injector is permanently disarmed and costs
 * one branch per query; components hold a pointer that may be null,
 * so the no-injection hot path stays free of RNG draws.
 */
class FaultInjector
{
  public:
    /** Disarmed injector: shouldInject() is always false. */
    FaultInjector() = default;

    explicit FaultInjector(const FaultPlan &plan)
        : plan_(plan), rng_(plan.seed), armed_(plan.anyArmed())
    {
    }

    /** True if any site can ever fire. */
    bool armed() const { return armed_; }

    /**
     * Evaluate one injection site. Counts an evaluation and draws
     * randomness only when the site itself is armed.
     */
    bool shouldInject(FaultSite site);

    /**
     * Uniform integer in [0, bound) from the injector's RNG, for
     * consumers that need a deterministic fault parameter (e.g.
     * which bit to flip). Call only after shouldInject() returned
     * true so disarmed runs never consume randomness.
     */
    std::uint64_t pickUniform(std::uint64_t bound)
    {
        return rng_.uniformInt(bound);
    }

    const FaultPlan &plan() const { return plan_; }
    const SiteStats &
    stats(FaultSite site) const
    {
        return stats_[static_cast<std::size_t>(site)];
    }
    std::uint64_t totalInjections() const;

    /**
     * Register per-armed-site counters plus the injection total
     * under `<prefix>.<site>.{evaluations,injections}`.
     */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

  private:
    FaultPlan plan_{};
    Rng rng_{1};
    bool armed_ = false;
    std::array<SiteStats, faultSiteCount> stats_{};
};

} // namespace fault
} // namespace xfm

#endif // XFM_FAULT_FAULT_HH
