/**
 * @file
 * FleetWorkload: heterogeneous multi-tenant drivers for the
 * far-memory service layer.
 *
 * Models the mixed fleet the paper's deployment sections describe:
 * a host runs a handful of latency-sensitive serving jobs alongside
 * batch analytics, all sharing one set of XFM DIMMs. Tenant shapes
 * are derived from the SPEC-like application profiles (working-set
 * skew from reuseTheta) and each tenant's pages carry a distinct
 * corpus class so compression ratios differ realistically across
 * tenants.
 */

#ifndef XFM_WORKLOAD_FLEET_HH
#define XFM_WORKLOAD_FLEET_HH

#include <vector>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "service/service.hh"

namespace xfm
{
namespace workload
{

/** Shape of the generated fleet. */
struct FleetConfig
{
    std::size_t numTenants = 8;
    /** Shard-local pages each tenant owns (<= pagesPerShard). */
    std::uint64_t pagesPerTenant = 128;
    /** Mean page-touch rate per tenant. */
    double accessesPerSecond = 100000.0;
    std::uint64_t seed = 1;
};

/** One generated tenant: service config plus its access shape. */
struct FleetTenantSpec
{
    service::TenantConfig cfg;
    double zipfTheta = 0.9;  ///< page-popularity skew of accesses
    compress::CorpusKind corpus = compress::CorpusKind::EnglishText;
    std::uint64_t seed = 1;
};

/**
 * Generate a heterogeneous tenant mix: every fourth tenant is
 * latency-sensitive (high-skew serving job under kstaled control);
 * the rest are batch tenants with profile-derived skew, WRR weights
 * 1..3, and alternating kstaled/senpai control policies. Controller
 * periods are scaled to millisecond simulations.
 */
std::vector<FleetTenantSpec> heterogeneousFleet(const FleetConfig &cfg);

/**
 * Drives a FarMemoryService with the generated fleet: admits every
 * tenant, seeds its pages with corpus data, and issues zipf-skewed
 * page touches with exponential inter-arrival gaps.
 */
class FleetDriver : public SimObject
{
  public:
    FleetDriver(std::string name, EventQueue &eq,
                service::FarMemoryService &svc,
                const FleetConfig &cfg);

    /** Begin the per-tenant access streams (service must be
     *  started separately). */
    void start();

    std::size_t numTenants() const { return streams_.size(); }
    service::TenantId tenantId(std::size_t i) const;
    const FleetTenantSpec &spec(std::size_t i) const;

    /** Page touches issued so far across all tenants. */
    std::uint64_t totalAccesses() const { return accesses_; }

  private:
    struct Stream
    {
        service::TenantId id;
        FleetTenantSpec spec;
        std::uint64_t pages;
        Tick meanGap;
        Rng rng;
    };

    void tick(std::size_t i);
    Tick nextGap(Stream &s);

    service::FarMemoryService &svc_;
    FleetConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t accesses_ = 0;
};

} // namespace workload
} // namespace xfm

#endif // XFM_WORKLOAD_FLEET_HH
