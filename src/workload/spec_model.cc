#include "spec_model.hh"

namespace xfm
{
namespace workload
{

std::vector<AppProfile>
specMemoryIntensiveMix()
{
    // Values follow the usual characterisation of these workloads:
    // mcf/lbm are bandwidth monsters with streaming behaviour;
    // omnetpp/xalancbmk are latency-bound pointer chasers with
    // LLC-sized working sets; gcc sits in between.
    return {
        // name       ipc   apki  ws    bw   stall  theta
        {"mcf",       0.45, 32.0, 48.0, 5.0, 0.55, 0.60},
        {"lbm",       0.60, 28.0, 64.0, 6.5, 0.50, 0.30},
        {"omnetpp",   0.55, 18.0, 24.0, 2.0, 0.45, 0.85},
        {"gcc",       0.90, 10.0, 12.0, 1.5, 0.25, 0.80},
        {"xalancbmk", 0.70, 14.0, 20.0, 1.8, 0.35, 0.90},
        {"cactuBSSN", 0.80, 12.0, 28.0, 3.0, 0.30, 0.50},
        {"fotonik3d", 0.65, 22.0, 40.0, 4.5, 0.45, 0.35},
        {"roms",      0.75, 16.0, 32.0, 3.5, 0.40, 0.45},
    };
}

} // namespace workload
} // namespace xfm
