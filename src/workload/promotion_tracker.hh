/**
 * @file
 * Promotion-rate measurement (paper Sec. 2.1).
 *
 * The promotion rate is "the percentage of far memory that is
 * accessed per minute"; Google's fleet observes ~15% with a 120 s
 * coldness threshold. This tracker turns a stream of promotion
 * events into that metric over a sliding window, so controllers
 * and experiments can report the rate they actually generate.
 */

#ifndef XFM_WORKLOAD_PROMOTION_TRACKER_HH
#define XFM_WORKLOAD_PROMOTION_TRACKER_HH

#include <deque>

#include "common/units.hh"

namespace xfm
{
namespace workload
{

/** Sliding-window promotion-rate meter. */
class PromotionTracker
{
  public:
    /**
     * @param far_capacity_bytes far-memory capacity the rate is
     *        normalised against.
     * @param window measurement window (the paper's metric uses one
     *        minute).
     */
    explicit PromotionTracker(std::uint64_t far_capacity_bytes,
                              Tick window = seconds(60.0))
        : capacity_(far_capacity_bytes), window_(window)
    {}

    /** Record a promotion of @p bytes at time @p when. */
    void
    recordPromotion(Tick when, std::uint64_t bytes)
    {
        events_.push_back({when, bytes});
        total_ += bytes;
        trim(when);
    }

    /**
     * Promotion rate at @p now: fraction of far capacity promoted
     * per minute (0.15 == the paper's 15%).
     */
    double
    rate(Tick now)
    {
        trim(now);
        if (capacity_ == 0)
            return 0.0;
        std::uint64_t windowed = 0;
        for (const auto &e : events_)
            windowed += e.bytes;
        const double window_minutes =
            ticksToSec(window_) / 60.0;
        return static_cast<double>(windowed)
            / static_cast<double>(capacity_) / window_minutes;
    }

    /** Promotions recorded over the tracker's lifetime, in bytes. */
    std::uint64_t lifetimeBytes() const { return total_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t bytes;
    };

    void
    trim(Tick now)
    {
        while (!events_.empty()
               && events_.front().when + window_ < now)
            events_.pop_front();
    }

    std::uint64_t capacity_;
    Tick window_;
    std::uint64_t total_ = 0;
    std::deque<Event> events_;
};

} // namespace workload
} // namespace xfm

#endif // XFM_WORKLOAD_PROMOTION_TRACKER_HH
