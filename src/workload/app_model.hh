/**
 * @file
 * Application-model workload generators for the tiered service.
 *
 * Two app shapes drive tier churn through the service layer:
 *
 *  - KvStoreModel: a memtier-like key-value arrival process.
 *    Requests arrive in pipelined bursts with exponential
 *    inter-burst gaps; keys are zipf-popular, so the shard splits
 *    into a hot head (stays NEAR), a warm middle (XFM), and a cold
 *    tail the spill scan pushes to DFM.
 *
 *  - InferenceBatchModel: an inference-serving working set. Each
 *    batch touches the weight pages sequentially (cyclic cursor —
 *    periodic reuse with long gaps, the canonical XFM-tier shape)
 *    plus a window of activation pages that drifts across the
 *    activation region, retiring pages behind it for demotion.
 *
 * Both are SimObjects over one tenant of a FarMemoryService: they
 * seed the shard with corpus content and issue `svc.access(tenant,
 * page)` streams, exactly like FleetDriver, so tier policies can be
 * compared under realistic application structure rather than a
 * single zipf knob.
 */

#ifndef XFM_WORKLOAD_APP_MODEL_HH
#define XFM_WORKLOAD_APP_MODEL_HH

#include "common/random.hh"
#include "compress/corpus.hh"
#include "service/service.hh"

namespace xfm
{
namespace workload
{

/** Shape of the memtier-like key-value arrival process. */
struct KvStoreConfig
{
    /** Shard-local pages backing the keyspace. */
    std::uint64_t pages = 128;
    /** Mean request rate (requests/s; bursts of pipelineDepth). */
    double opsPerSecond = 50000.0;
    /** Key-popularity skew (memtier's default gaussian roughly
     *  matches a high-theta zipf over pages). */
    double zipfTheta = 0.99;
    /** GET fraction; SETs rewrite the page content (dirty data). */
    double getRatio = 0.9;
    /** Requests issued back-to-back per arrival (pipelining). */
    std::uint32_t pipelineDepth = 4;
    std::uint64_t seed = 1;
};

/** Per-model statistics (both app models share the struct). */
struct AppModelStats
{
    std::uint64_t requests = 0;   ///< page touches issued
    std::uint64_t bursts = 0;     ///< arrival events
    std::uint64_t localHits = 0;  ///< touches served from NEAR
    std::uint64_t faults = 0;     ///< touches that demand-faulted
    std::uint64_t writes = 0;     ///< SET-style page rewrites
};

/**
 * Memtier-like key-value tenant driver.
 */
class KvStoreModel : public SimObject
{
  public:
    /** Admits its own tenant via @p tenant_cfg (pages forced to
     *  cfg.pages); fatal if admission fails. */
    KvStoreModel(std::string name, EventQueue &eq,
                 service::FarMemoryService &svc,
                 const KvStoreConfig &cfg,
                 service::TenantConfig tenant_cfg);

    void start();

    service::TenantId tenantId() const { return tenant_; }
    const AppModelStats &stats() const { return stats_; }

  private:
    void burst();

    service::FarMemoryService &svc_;
    KvStoreConfig cfg_;
    service::TenantId tenant_;
    Rng rng_;
    AppModelStats stats_;
};

/** Shape of the inference-batch working-set model. */
struct InferenceBatchConfig
{
    /** Model-weight pages, touched cyclically every batch. */
    std::uint64_t weightPages = 96;
    /** Activation pages, used through a drifting window. */
    std::uint64_t activationPages = 64;
    /** Batch arrival rate (deterministic period — serving cadence
     *  is paced, not Poisson). */
    double batchesPerSecond = 200.0;
    /** Weight pages touched per batch (sequential cursor). */
    std::uint32_t batchTouches = 32;
    /** Live activation pages per batch. */
    std::uint32_t activationWindow = 16;
    /** Pages the activation window slides per batch; retired pages
     *  go cold and demote. */
    std::uint32_t driftPerBatch = 1;
    std::uint64_t seed = 1;
};

/**
 * Inference-serving tenant driver (weights + drifting activations).
 */
class InferenceBatchModel : public SimObject
{
  public:
    /** Admits its own tenant (pages forced to weightPages +
     *  activationPages); fatal if admission fails. */
    InferenceBatchModel(std::string name, EventQueue &eq,
                        service::FarMemoryService &svc,
                        const InferenceBatchConfig &cfg,
                        service::TenantConfig tenant_cfg);

    void start();

    service::TenantId tenantId() const { return tenant_; }
    const AppModelStats &stats() const { return stats_; }

  private:
    void batch();

    service::FarMemoryService &svc_;
    InferenceBatchConfig cfg_;
    service::TenantId tenant_;
    std::uint64_t weight_cursor_ = 0;
    std::uint64_t window_start_ = 0;  ///< activation window offset
    Rng rng_;
    AppModelStats stats_;
};

} // namespace workload
} // namespace xfm

#endif // XFM_WORKLOAD_APP_MODEL_HH
