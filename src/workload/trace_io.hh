/**
 * @file
 * Swap-trace recording and replay.
 *
 * The paper's emulator consumes swap-in/out traces captured from
 * AIFM runs. This module provides the equivalent plumbing: traces
 * can be serialised to a line-oriented text format, loaded back,
 * and replayed against any SfmBackend with original timing.
 *
 * Format (one event per line, '#' comments allowed):
 *   <tick> IN|OUT <page> <prefetchable 0|1>
 */

#ifndef XFM_WORKLOAD_TRACE_IO_HH
#define XFM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <vector>

#include "workload/trace_gen.hh"

namespace xfm
{
namespace workload
{

/** Serialise events to the text format. */
void writeTrace(std::ostream &os,
                const std::vector<SwapEvent> &events);

/**
 * Parse a trace.
 *
 * @throws FatalError on malformed lines or out-of-order timestamps.
 */
std::vector<SwapEvent> readTrace(std::istream &is);

/** Capture the next @p n events of a generator into a vector. */
std::vector<SwapEvent> captureTrace(SwapTraceGenerator &gen,
                                    std::size_t n);

/** Summary statistics of a trace. */
struct TraceSummary
{
    std::size_t events = 0;
    std::size_t swapIns = 0;
    std::size_t swapOuts = 0;
    std::size_t prefetchable = 0;
    Tick duration = 0;

    /** Average promotion traffic implied by the trace, GB/min. */
    double
    gbPromotedPerMin() const
    {
        if (duration == 0)
            return 0.0;
        const double gb = static_cast<double>(swapIns) * pageBytes
            / 1e9;
        return gb / (ticksToSec(duration) / 60.0);
    }
};

TraceSummary summarise(const std::vector<SwapEvent> &events);

} // namespace workload
} // namespace xfm

#endif // XFM_WORKLOAD_TRACE_IO_HH
