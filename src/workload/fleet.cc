#include "fleet.hh"

#include <cmath>

#include "common/logging.hh"
#include "workload/spec_model.hh"

namespace xfm
{
namespace workload
{

namespace
{

/** Corpus classes cycled over tenants (diverse ratios, Fig. 8). */
constexpr compress::CorpusKind fleetCorpora[] = {
    compress::CorpusKind::KeyValue,
    compress::CorpusKind::Json,
    compress::CorpusKind::HeapObjects,
    compress::CorpusKind::LogLines,
    compress::CorpusKind::EnglishText,
    compress::CorpusKind::SourceCode,
    compress::CorpusKind::NumericColumns,
    compress::CorpusKind::Html,
};

} // namespace

std::vector<FleetTenantSpec>
heterogeneousFleet(const FleetConfig &cfg)
{
    const auto profiles = specMemoryIntensiveMix();
    std::vector<FleetTenantSpec> fleet;
    fleet.reserve(cfg.numTenants);

    // Controller periods re-scaled from the datacenter's seconds to
    // the simulator's milliseconds so a short run exercises the full
    // reclaim/fault cycle.
    sfm::ControllerConfig kstaled;
    kstaled.coldThreshold = milliseconds(2.0);
    kstaled.scanInterval = milliseconds(1.0);
    kstaled.maxSwapOutsPerScan = 16;

    sfm::SenpaiConfig senpai;
    senpai.interval = milliseconds(1.0);
    senpai.targetFaultsPerSec = 20000.0;
    senpai.initialReclaim = 8;
    senpai.maxReclaim = 64;

    for (std::size_t i = 0; i < cfg.numTenants; ++i) {
        const AppProfile &prof = profiles[i % profiles.size()];
        FleetTenantSpec spec;
        spec.cfg.name = prof.name + "_" + std::to_string(i);
        spec.cfg.pages = cfg.pagesPerTenant;
        spec.cfg.kstaled = kstaled;
        spec.cfg.senpai = senpai;
        spec.corpus = fleetCorpora[i % std::size(fleetCorpora)];
        spec.seed = cfg.seed + i;

        if (i % 4 == 0) {
            // Serving job: hot head, strict latency class.
            spec.cfg.cls = service::PriorityClass::LatencySensitive;
            spec.cfg.policy = service::ControlPolicy::Kstaled;
            spec.cfg.weight = 1;
            spec.zipfTheta = 0.99;
        } else {
            spec.cfg.cls = service::PriorityClass::Batch;
            spec.cfg.policy = i % 2 ? service::ControlPolicy::Senpai
                                    : service::ControlPolicy::Kstaled;
            spec.cfg.weight = 1 + static_cast<std::uint32_t>(i % 3);
            spec.zipfTheta = prof.reuseTheta;
        }
        fleet.push_back(std::move(spec));
    }
    return fleet;
}

FleetDriver::FleetDriver(std::string name, EventQueue &eq,
                         service::FarMemoryService &svc,
                         const FleetConfig &cfg)
    : SimObject(std::move(name), eq), svc_(svc), cfg_(cfg)
{
    XFM_ASSERT(cfg_.accessesPerSecond > 0.0,
               "fleet access rate must be positive");
    for (auto &spec : heterogeneousFleet(cfg_)) {
        const service::TenantId id = svc_.addTenant(spec.cfg);
        if (id == service::invalidTenant) {
            warn("fleet tenant '", spec.cfg.name,
                 "' was not admitted; skipping");
            continue;
        }
        // Give every page real content so compression ratios (and
        // therefore SFM capacity behaviour) differ per tenant.
        const Bytes corpus = compress::generateCorpus(
            spec.corpus, spec.seed, spec.cfg.pages * pageBytes);
        const auto pages = compress::paginate(corpus, pageBytes);
        for (std::size_t p = 0; p < pages.size(); ++p)
            svc_.writePage(id, p, pages[p]);

        Stream s{id, spec, spec.cfg.pages,
                 static_cast<Tick>(seconds(1.0)
                                   / cfg_.accessesPerSecond),
                 Rng(spec.seed * 0x9E3779B9ull + 1)};
        streams_.push_back(std::move(s));
    }
}

service::TenantId
FleetDriver::tenantId(std::size_t i) const
{
    XFM_ASSERT(i < streams_.size(), "no fleet stream ", i);
    return streams_[i].id;
}

const FleetTenantSpec &
FleetDriver::spec(std::size_t i) const
{
    XFM_ASSERT(i < streams_.size(), "no fleet stream ", i);
    return streams_[i].spec;
}

Tick
FleetDriver::nextGap(Stream &s)
{
    // Exponential inter-arrival around the tenant's mean rate.
    const double u = s.rng.uniformReal();
    const double gap = -std::log(1.0 - u)
                       * static_cast<double>(s.meanGap);
    return std::max<Tick>(1, static_cast<Tick>(gap));
}

void
FleetDriver::start()
{
    for (std::size_t i = 0; i < streams_.size(); ++i)
        eventq().scheduleIn(nextGap(streams_[i]),
                            [this, i] { tick(i); });
}

void
FleetDriver::tick(std::size_t i)
{
    Stream &s = streams_[i];
    const sfm::VirtPage page = s.rng.zipf(s.pages, s.spec.zipfTheta);
    svc_.access(s.id, page);
    ++accesses_;
    eventq().scheduleIn(nextGap(s), [this, i] { tick(i); });
}

} // namespace workload
} // namespace xfm
