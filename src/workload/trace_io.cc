#include "trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace xfm
{
namespace workload
{

void
writeTrace(std::ostream &os, const std::vector<SwapEvent> &events)
{
    os << "# xfm swap trace v1: <tick> IN|OUT <page> "
          "<prefetchable>\n";
    for (const auto &e : events) {
        os << e.when << ' '
           << (e.kind == SwapKind::SwapIn ? "IN" : "OUT") << ' '
           << e.page << ' ' << (e.prefetchable ? 1 : 0) << '\n';
    }
}

std::vector<SwapEvent>
readTrace(std::istream &is)
{
    std::vector<SwapEvent> events;
    std::string line;
    std::size_t lineno = 0;
    Tick prev = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Tolerate CRLF traces and whitespace-only lines: both used
        // to trip the malformed-record check below.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.find_first_not_of(" \t") == std::string::npos
            || line[0] == '#')
            continue;
        std::istringstream ls(line);
        SwapEvent e;
        std::string kind;
        int prefetchable = 0;
        if (!(ls >> e.when >> kind >> e.page >> prefetchable))
            fatal("trace line ", lineno, ": malformed record");
        if (kind == "IN")
            e.kind = SwapKind::SwapIn;
        else if (kind == "OUT")
            e.kind = SwapKind::SwapOut;
        else
            fatal("trace line ", lineno, ": unknown kind '", kind,
                  "'");
        e.prefetchable = prefetchable != 0;
        if (e.when < prev)
            fatal("trace line ", lineno, ": timestamps not "
                  "monotonic");
        prev = e.when;
        events.push_back(e);
    }
    return events;
}

std::vector<SwapEvent>
captureTrace(SwapTraceGenerator &gen, std::size_t n)
{
    std::vector<SwapEvent> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        events.push_back(gen.next());
    return events;
}

TraceSummary
summarise(const std::vector<SwapEvent> &events)
{
    TraceSummary s;
    s.events = events.size();
    for (const auto &e : events) {
        if (e.kind == SwapKind::SwapIn) {
            ++s.swapIns;
            if (e.prefetchable)
                ++s.prefetchable;
        } else {
            ++s.swapOuts;
        }
    }
    if (!events.empty())
        s.duration = events.back().when - events.front().when;
    return s;
}

} // namespace workload
} // namespace xfm
