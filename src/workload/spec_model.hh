/**
 * @file
 * SPEC-CPU-like application profiles.
 *
 * We cannot ship SPEC 2017, so the co-run experiments (Fig. 11)
 * drive the interference model with synthetic profiles whose cache
 * and bandwidth characteristics follow published characterisations
 * of the memory-intensive SPEC workloads the paper co-runs.
 */

#ifndef XFM_WORKLOAD_SPEC_MODEL_HH
#define XFM_WORKLOAD_SPEC_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xfm
{
namespace workload
{

/** Cache/memory behaviour of one application. */
struct AppProfile
{
    std::string name;
    double ipcAlone = 1.0;        ///< IPC with the LLC to itself
    double llcApki = 10.0;        ///< LLC accesses / kilo-instruction
    double workingSetMiB = 16.0;  ///< hot cache footprint
    double bandwidthGBps = 2.0;   ///< DRAM demand running alone
    /** Fraction of runtime stalled on memory when running alone. */
    double memStallFraction = 0.4;
    /** Zipf skew of its reuse pattern (higher = more cacheable). */
    double reuseTheta = 0.8;
};

/**
 * The eight LLC/memory-sensitive profiles used for the Fig. 11
 * reproduction (named after the SPEC workloads they imitate).
 */
std::vector<AppProfile> specMemoryIntensiveMix();

} // namespace workload
} // namespace xfm

#endif // XFM_WORKLOAD_SPEC_MODEL_HH
