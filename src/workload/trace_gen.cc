#include "trace_gen.hh"

#include <cmath>

#include "common/logging.hh"

namespace xfm
{
namespace workload
{

SwapTraceGenerator::SwapTraceGenerator(const SwapTraceConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed),
      far_pages_(static_cast<std::uint64_t>(
          cfg.farCapacityGB * 1e9 / static_cast<double>(pageBytes)))
{
    XFM_ASSERT(cfg_.farCapacityGB > 0, "capacity must be positive");
    XFM_ASSERT(cfg_.promotionRate > 0 && cfg_.promotionRate <= 1.0,
               "promotion rate must be a fraction per minute");
    // EQ1: bytes promoted per minute; each promotion is one page
    // and (in steady state) pairs with one demotion.
    const double pages_per_sec =
        cfg_.farCapacityGB * cfg_.promotionRate * 1e9
        / static_cast<double>(pageBytes) / 60.0;
    mean_gap_ = static_cast<Tick>(1e12 / pages_per_sec);
}

double
SwapTraceGenerator::eventsPerSecond() const
{
    return 2.0 * 1e12 / static_cast<double>(mean_gap_);
}

SwapEvent
SwapTraceGenerator::next()
{
    if (pending_out_) {
        // The matching demotion immediately follows its promotion:
        // the far region is full, so space must be made.
        pending_out_ = false;
        SwapEvent e;
        e.when = next_tick_;
        e.kind = SwapKind::SwapOut;
        e.page = pending_page_;
        e.prefetchable = true;  // demotions are never latency bound
        return e;
    }

    // Exponential inter-arrival with the configured mean.
    const double u = rng_.uniformReal();
    const auto gap = static_cast<Tick>(
        -std::log1p(-u) * static_cast<double>(mean_gap_));
    next_tick_ += gap;

    SwapEvent e;
    e.when = next_tick_;
    e.kind = SwapKind::SwapIn;
    e.page = rng_.zipf(far_pages_, cfg_.zipfTheta);
    e.prefetchable = rng_.chance(cfg_.predictability);

    pending_out_ = true;
    // The page demoted to make room is an arbitrary cold page.
    pending_page_ = rng_.uniformInt(far_pages_);
    return e;
}

WebFrontendGenerator::WebFrontendGenerator(const WebFrontendConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed),
      gap_(static_cast<Tick>(1e12 / cfg.requestsPerSecond))
{
    XFM_ASSERT(cfg_.objects > 0, "need at least one object");
    XFM_ASSERT(cfg_.requestsPerSecond > 0, "request rate positive");
}

ObjectAccess
WebFrontendGenerator::next()
{
    next_tick_ += gap_;
    const std::uint64_t epoch =
        next_tick_ / std::max<Tick>(cfg_.epoch, 1);
    if (epoch != epoch_index_) {
        epoch_index_ = epoch;
        // Popularity drift: rotate the rank->object mapping.
        rotation_ = (rotation_ + cfg_.objects / 7 + 1) % cfg_.objects;
    }
    const std::uint64_t rank = rng_.zipf(cfg_.objects, cfg_.zipfTheta);
    ObjectAccess a;
    a.when = next_tick_;
    a.object = (rank + rotation_) % cfg_.objects;
    return a;
}

} // namespace workload
} // namespace xfm
