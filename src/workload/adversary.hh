/**
 * @file
 * Adversarial tenant models against the shared refresh machinery.
 *
 * With REFpb/RFM realism armed, a tenant's activation pressure raises
 * per-bank RAA counters until the device forces RFM commands that
 * destroy NMA service slots (and, at RAAMMT, block further activates
 * outright). That shared state is a resource-exhaustion surface and a
 * timing side channel; these models exercise both:
 *
 *  - RfmStarverModel: hammers one bank's RAA counter so RFMs steal
 *    the victim's service slots and RAAMMT blocks stall its CPU-path
 *    faults — a noisy-neighbour DoS in the RogueRFM mould.
 *
 *  - CovertSenderModel / CovertReceiverModel: a refresh-timing covert
 *    channel. The sender modulates RFM pressure per bit period
 *    (hammer = 1, idle = 0); the receiver probes its own arbiter lane
 *    and decodes bits from slot-grant latency. Both sides derive the
 *    bit schedule from a shared seed, so the receiver can report bit
 *    error rate and the resulting channel capacity.
 *
 * Each model admits its own tenant (like the app models) so the
 * defense layer can attribute, flag, and throttle it individually.
 * Hammering is injected via RefreshController::noteActivates with the
 * tenant id as the activation source — the modelling shortcut for
 * "this tenant's row-activation traffic", which a throttled tenant
 * loses along with its far-memory service.
 */

#ifndef XFM_WORKLOAD_ADVERSARY_HH
#define XFM_WORKLOAD_ADVERSARY_HH

#include <vector>

#include "common/random.hh"
#include "service/service.hh"

namespace xfm
{
namespace workload
{

/** Shape of the RFM-starver attack. */
struct RfmStarverConfig
{
    /** Shard-local pages (the attacker still looks like a tenant). */
    std::uint64_t pages = 64;
    /** Hammer bursts per second. */
    double burstsPerSecond = 200000.0;
    /** Row activations injected per burst. */
    std::uint32_t activationsPerBurst = 32;
    /** DIMM (refresh-controller rank) under attack. */
    std::uint32_t targetDimm = 0;
    /** Bank under attack; ignored when sweepBanks is set. */
    std::uint32_t targetBank = 0;
    /** Rotate the hammered bank every burst (spread the pressure). */
    bool sweepBanks = false;
    /** Stop hammering after this many bursts (0 = unlimited); a
     *  bounded budget leaves a quiet tail for detector settlement. */
    std::uint64_t burstBudget = 0;
    std::uint64_t seed = 1;
};

/** Attack-side statistics (starver and covert sender share it). */
struct AdversaryStats
{
    std::uint64_t bursts = 0;      ///< hammer bursts attempted
    std::uint64_t activationsInjected = 0;
    /** Bursts skipped while the abuse detector held the tenant
     *  throttled (the defense visibly bites here). */
    std::uint64_t suppressedBursts = 0;
};

/**
 * RFM slot-starvation attacker (one tenant).
 */
class RfmStarverModel : public SimObject
{
  public:
    /** Admits its own tenant via @p tenant_cfg (pages forced to
     *  cfg.pages); fatal if admission fails. */
    RfmStarverModel(std::string name, EventQueue &eq,
                    service::FarMemoryService &svc,
                    const RfmStarverConfig &cfg,
                    service::TenantConfig tenant_cfg);

    void start();

    service::TenantId tenantId() const { return tenant_; }
    const AdversaryStats &stats() const { return stats_; }

  private:
    void burst();

    service::FarMemoryService &svc_;
    RfmStarverConfig cfg_;
    service::TenantId tenant_;
    std::uint32_t bank_cursor_ = 0;
    AdversaryStats stats_;
};

/** Shared shape of the covert-channel pair. */
struct CovertConfig
{
    /** Shard-local pages per endpoint tenant. */
    std::uint64_t pages = 32;
    /** Signalling interval: one bit of the schedule per period. */
    Tick bitPeriod = microseconds(50.0);
    /** Bits transmitted before the channel falls silent. */
    std::uint32_t bits = 64;
    /** Sender hammer bursts within a 1-bit period. */
    std::uint32_t burstsPerBit = 8;
    /** Row activations injected per hammer burst. */
    std::uint32_t activationsPerBurst = 32;
    std::uint32_t targetDimm = 0;
    std::uint32_t targetBank = 0;
    /** Receiver arbiter-lane probes per bit period. */
    std::uint32_t probesPerBit = 4;
    /** Shared secret: both endpoints derive the bit schedule from
     *  it, so the receiver can self-score its decoding. */
    std::uint64_t scheduleSeed = 0x5eedu;
    /**
     * Minimum hi-lo spread (ns) of per-bit probe latencies before
     * the receiver trusts a decode threshold. A refresh-timing
     * signal must stall grants by at least about a tREFI; smaller
     * spread is dispatch-phase noise and the trace decodes as flat
     * (all zeros).
     */
    double flatThresholdNs = 4000.0;
};

/** The bit the shared schedule assigns to position @p k. */
bool covertBit(std::uint64_t schedule_seed, std::uint32_t k);

/** Binary entropy of @p p in bits (H2; 0 at p in {0, 1}). */
double binaryEntropy(double p);

/**
 * Covert-channel sender: modulates RFM pressure by the schedule.
 */
class CovertSenderModel : public SimObject
{
  public:
    CovertSenderModel(std::string name, EventQueue &eq,
                      service::FarMemoryService &svc,
                      const CovertConfig &cfg,
                      service::TenantConfig tenant_cfg);

    void start();

    service::TenantId tenantId() const { return tenant_; }
    const AdversaryStats &stats() const { return stats_; }
    std::uint32_t bitsSent() const { return bit_; }

  private:
    void bitStart();
    void burst(std::uint32_t remaining);

    service::FarMemoryService &svc_;
    CovertConfig cfg_;
    service::TenantId tenant_;
    std::uint32_t bit_ = 0;  ///< schedule position
    AdversaryStats stats_;
};

/** Receiver-side decode results. */
struct CovertReceiverStats
{
    std::uint64_t probes = 0;      ///< arbiter probes issued
    std::uint64_t probesServed = 0;
    std::uint32_t bitsDecoded = 0;
    std::uint32_t bitErrors = 0;

    double
    bitErrorRate() const
    {
        return bitsDecoded
            ? static_cast<double>(bitErrors) / bitsDecoded : 0.0;
    }
};

/**
 * Covert-channel receiver: probes its own arbiter lane and decodes
 * the schedule from slot-grant latency.
 */
class CovertReceiverModel : public SimObject
{
  public:
    CovertReceiverModel(std::string name, EventQueue &eq,
                        service::FarMemoryService &svc,
                        const CovertConfig &cfg,
                        service::TenantConfig tenant_cfg);

    void start();

    service::TenantId tenantId() const { return tenant_; }
    const CovertReceiverStats &stats() const { return stats_; }

    /** True once all cfg.bits bit periods have been sampled. */
    bool done() const { return stats_.bitsDecoded >= cfg_.bits; }

    /** Fastest probe wait (ns) observed in each bit period — the
     *  minimum rides out queueing carried over from earlier bits,
     *  which the mean does not. */
    const std::vector<double> &bitLatencies() const
    {
        return bit_latency_ns_;
    }

    /**
     * Measured channel capacity in bits/s: the signalling rate
     * discounted by the binary symmetric channel's capacity at the
     * observed bit error rate, 1 - H2(BER). Zero until decoding ran.
     */
    double channelCapacityBps() const;

  private:
    void bitStart();
    void probe(std::uint32_t idx);
    void decode();

    service::FarMemoryService &svc_;
    CovertConfig cfg_;
    service::TenantId tenant_;
    std::uint32_t bit_ = 0;
    /** Fastest probe wait seen per bit period (indexed by bit). */
    std::vector<double> wait_min_ns_;
    std::vector<double> bit_latency_ns_;
    CovertReceiverStats stats_;
};

} // namespace workload
} // namespace xfm

#endif // XFM_WORKLOAD_ADVERSARY_HH
