#include "workload/adversary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace xfm
{
namespace workload
{

bool
covertBit(std::uint64_t schedule_seed, std::uint32_t k)
{
    // splitmix64 over the bit position: both endpoints evaluate the
    // same schedule without sharing any simulation state.
    std::uint64_t z =
        schedule_seed + 0x9E3779B97F4A7C15ull * (k + 1ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return (z >> 63) != 0;
}

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

namespace
{

/** Admit the model's tenant or die trying. */
service::TenantId
admit(service::FarMemoryService &svc, const std::string &who,
      service::TenantConfig tenant_cfg, std::uint64_t pages)
{
    tenant_cfg.pages = pages;
    const service::TenantId id = svc.addTenant(tenant_cfg);
    if (id == service::invalidTenant)
        fatal(who, ": tenant '", tenant_cfg.name,
              "' was not admitted");
    return id;
}

/** Validate a hammer target against the backend's geometry. */
void
checkTarget(const service::FarMemoryService &svc,
            const std::string &who, std::uint32_t dimm,
            std::uint32_t bank)
{
    const auto &sys = svc.config().system;
    if (dimm >= sys.numDimms)
        fatal(who, ": target DIMM ", dimm, " out of range (",
              sys.numDimms, " DIMMs)");
    const std::uint32_t banks =
        sys.dimmMem.rank.device.banksPerChip;
    if (bank >= banks)
        fatal(who, ": target bank ", bank, " out of range (", banks,
              " banks)");
}

} // namespace

// --------------------------------------------------------------- //
//  RfmStarverModel                                                 //
// --------------------------------------------------------------- //

RfmStarverModel::RfmStarverModel(std::string name, EventQueue &eq,
                                 service::FarMemoryService &svc,
                                 const RfmStarverConfig &cfg,
                                 service::TenantConfig tenant_cfg)
    : SimObject(std::move(name), eq), svc_(svc), cfg_(cfg)
{
    XFM_ASSERT(cfg_.burstsPerSecond > 0.0,
               "starver needs a positive burst rate");
    XFM_ASSERT(cfg_.activationsPerBurst > 0,
               "starver needs activations per burst");
    checkTarget(svc_, this->name(), cfg_.targetDimm,
                cfg_.targetBank);
    tenant_ = admit(svc_, this->name(), std::move(tenant_cfg),
                    cfg_.pages);
    bank_cursor_ = cfg_.targetBank;
}

void
RfmStarverModel::start()
{
    const Tick period = std::max<Tick>(
        1, static_cast<Tick>(seconds(1.0) / cfg_.burstsPerSecond));
    eventq().scheduleIn(period, [this] { burst(); });
}

void
RfmStarverModel::burst()
{
    // A bounded budget simply stops: the quiet tail lets the abuse
    // detector's throttle age out (or a test observe settlement).
    if (cfg_.burstBudget && stats_.bursts >= cfg_.burstBudget)
        return;
    ++stats_.bursts;
    if (svc_.arbiter().abuseThrottled(tenant_)) {
        // Throttled: the tenant's far-memory traffic is refused, so
        // its attributed activation pressure disappears with it.
        ++stats_.suppressedBursts;
    } else {
        const std::uint32_t banks =
            svc_.config().system.dimmMem.rank.device.banksPerChip;
        const std::uint32_t bank = cfg_.sweepBanks
            ? (bank_cursor_ = (bank_cursor_ + 1) % banks)
            : cfg_.targetBank;
        svc_.backend().refresh().noteActivates(
            cfg_.targetDimm, bank, cfg_.activationsPerBurst,
            tenant_);
        stats_.activationsInjected += cfg_.activationsPerBurst;
    }
    const Tick period = std::max<Tick>(
        1, static_cast<Tick>(seconds(1.0) / cfg_.burstsPerSecond));
    eventq().scheduleIn(period, [this] { burst(); });
}

// --------------------------------------------------------------- //
//  CovertSenderModel                                               //
// --------------------------------------------------------------- //

CovertSenderModel::CovertSenderModel(std::string name,
                                     EventQueue &eq,
                                     service::FarMemoryService &svc,
                                     const CovertConfig &cfg,
                                     service::TenantConfig tenant_cfg)
    : SimObject(std::move(name), eq), svc_(svc), cfg_(cfg)
{
    XFM_ASSERT(cfg_.bitPeriod > 0, "bit period must be positive");
    XFM_ASSERT(cfg_.bits > 0, "need at least one bit");
    XFM_ASSERT(cfg_.burstsPerBit > 0 && cfg_.activationsPerBurst > 0,
               "sender needs hammer pressure for a 1 bit");
    checkTarget(svc_, this->name(), cfg_.targetDimm,
                cfg_.targetBank);
    tenant_ = admit(svc_, this->name(), std::move(tenant_cfg),
                    cfg_.pages);
}

void
CovertSenderModel::start()
{
    eventq().scheduleIn(cfg_.bitPeriod, [this] { bitStart(); });
}

void
CovertSenderModel::bitStart()
{
    if (bit_ >= cfg_.bits)
        return;  // transmission complete; fall silent
    const bool one = covertBit(cfg_.scheduleSeed, bit_);
    ++bit_;
    if (one)
        burst(cfg_.burstsPerBit);
    eventq().scheduleIn(cfg_.bitPeriod, [this] { bitStart(); });
}

void
CovertSenderModel::burst(std::uint32_t remaining)
{
    ++stats_.bursts;
    if (svc_.arbiter().abuseThrottled(tenant_)) {
        ++stats_.suppressedBursts;
    } else {
        svc_.backend().refresh().noteActivates(
            cfg_.targetDimm, cfg_.targetBank,
            cfg_.activationsPerBurst, tenant_);
        stats_.activationsInjected += cfg_.activationsPerBurst;
    }
    if (remaining <= 1)
        return;
    const Tick gap =
        std::max<Tick>(1, cfg_.bitPeriod / cfg_.burstsPerBit);
    eventq().scheduleIn(gap, [this, remaining] {
        burst(remaining - 1);
    });
}

// --------------------------------------------------------------- //
//  CovertReceiverModel                                             //
// --------------------------------------------------------------- //

CovertReceiverModel::CovertReceiverModel(
    std::string name, EventQueue &eq,
    service::FarMemoryService &svc, const CovertConfig &cfg,
    service::TenantConfig tenant_cfg)
    : SimObject(std::move(name), eq), svc_(svc), cfg_(cfg),
      wait_min_ns_(cfg.bits, std::numeric_limits<double>::max())
{
    XFM_ASSERT(cfg_.probesPerBit > 0, "receiver needs probes");
    tenant_ = admit(svc_, this->name(), std::move(tenant_cfg),
                    cfg_.pages);
}

void
CovertReceiverModel::start()
{
    eventq().scheduleIn(cfg_.bitPeriod, [this] { bitStart(); });
}

void
CovertReceiverModel::bitStart()
{
    if (bit_ >= cfg_.bits) {
        // One full period after the last bit: late grants have
        // drained (or provably never will within a period).
        decode();
        return;
    }
    const std::uint32_t idx = bit_++;
    // Interior offsets only: a probe right at the bit edge would
    // sample the lane before the sender's first activations have
    // reached a REF slot and forced an RFM, reading a hammered
    // period as open.
    const Tick gap =
        std::max<Tick>(1, cfg_.bitPeriod / (cfg_.probesPerBit + 1));
    for (std::uint32_t p = 0; p < cfg_.probesPerBit; ++p)
        eventq().scheduleIn(std::max<Tick>(1, (p + 1) * gap),
                            [this, idx] { probe(idx); });
    eventq().scheduleIn(cfg_.bitPeriod, [this] { bitStart(); });
}

void
CovertReceiverModel::probe(std::uint32_t idx)
{
    ++stats_.probes;
    const Tick t0 = curTick();
    svc_.arbiter().enqueue(tenant_, [this, idx, t0] {
        ++stats_.probesServed;
        wait_min_ns_[idx] = std::min(wait_min_ns_[idx],
                                     ticksToNs(curTick() - t0));
    });
}

void
CovertReceiverModel::decode()
{
    if (stats_.bitsDecoded)
        return;  // already decoded
    // Per-bit signal = the FASTEST grant inside the period: during
    // a hammered bit even the best probe waits out stolen windows,
    // while one fast grant in an idle bit proves the lane was open
    // no matter how much queueing bled over from earlier bits. A
    // bit whose probes were never served at all saw effectively
    // unbounded latency — the strongest possible "hammered" signal.
    bit_latency_ns_ = wait_min_ns_;
    // A bit none of whose probes were ever served is pinned to a
    // huge-but-finite wait so threshold arithmetic stays sane.
    constexpr double starvedNs = 1.0e12;
    for (double &v : bit_latency_ns_)
        v = std::min(v, starvedNs);
    // The decode threshold sits in the largest relative gap of the
    // sorted per-bit latencies: hammered bits wait out whole bit
    // periods (and drain queues at different depths, so they spread
    // widely), idle bits sit at dispatch-phase scale, and the jump
    // between the two clusters dwarfs any jump inside either. A
    // flat trace (defense killed the modulation; spread below the
    // refresh-scale floor) has no usable threshold: everything
    // decodes 0 and BER collapses to the schedule's 1-density,
    // i.e. near-zero capacity.
    std::vector<double> sorted = bit_latency_ns_;
    std::sort(sorted.begin(), sorted.end());
    const double lo = sorted.front(), hi = sorted.back();
    const bool flat = !(hi > lo + cfg_.flatThresholdNs);
    double threshold = hi + 1.0;
    double best = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
        const double a = sorted[k], b = sorted[k + 1];
        const double score = (b - a) / (a + cfg_.flatThresholdNs);
        if (score > best) {
            best = score;
            threshold = a + (b - a) / 2.0;
        }
    }
    for (std::uint32_t k = 0; k < cfg_.bits; ++k) {
        const bool rx = !flat && bit_latency_ns_[k] >= threshold;
        ++stats_.bitsDecoded;
        if (rx != covertBit(cfg_.scheduleSeed, k))
            ++stats_.bitErrors;
    }
}

double
CovertReceiverModel::channelCapacityBps() const
{
    if (!stats_.bitsDecoded)
        return 0.0;
    const double rate =
        seconds(1.0) / static_cast<double>(cfg_.bitPeriod);
    return rate * (1.0 - binaryEntropy(stats_.bitErrorRate()));
}

} // namespace workload
} // namespace xfm
