#include "workload/app_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace xfm
{
namespace workload
{

namespace
{

/** Seed one tenant's shard with corpus content. */
void
seedShard(service::FarMemoryService &svc, service::TenantId id,
          compress::CorpusKind kind, std::uint64_t seed,
          std::uint64_t pages)
{
    const Bytes corpus =
        compress::generateCorpus(kind, seed, pages * pageBytes);
    const auto chunks = compress::paginate(corpus, pageBytes);
    for (std::size_t p = 0; p < chunks.size(); ++p)
        svc.writePage(id, p, chunks[p]);
}

/** Exponential gap around @p mean (ticks), at least one tick. */
Tick
exponentialGap(Rng &rng, double mean)
{
    const double u = rng.uniformReal();
    return std::max<Tick>(
        1, static_cast<Tick>(-std::log(1.0 - u) * mean));
}

} // namespace

KvStoreModel::KvStoreModel(std::string name, EventQueue &eq,
                           service::FarMemoryService &svc,
                           const KvStoreConfig &cfg,
                           service::TenantConfig tenant_cfg)
    : SimObject(std::move(name), eq), svc_(svc), cfg_(cfg),
      rng_(cfg.seed * 0x9E3779B9ull + 7)
{
    XFM_ASSERT(cfg_.opsPerSecond > 0.0 && cfg_.pipelineDepth > 0,
               "kv model needs a positive request rate");
    tenant_cfg.pages = cfg_.pages;
    tenant_ = svc_.addTenant(tenant_cfg);
    if (tenant_ == service::invalidTenant)
        fatal(this->name(), ": tenant '", tenant_cfg.name,
              "' was not admitted");
    // KV values compress like serialized records.
    seedShard(svc_, tenant_, compress::CorpusKind::KeyValue,
              cfg_.seed, cfg_.pages);
}

void
KvStoreModel::start()
{
    const double mean_gap = seconds(1.0) * cfg_.pipelineDepth
        / cfg_.opsPerSecond;
    eventq().scheduleIn(exponentialGap(rng_, mean_gap),
                        [this] { burst(); });
}

void
KvStoreModel::burst()
{
    ++stats_.bursts;
    for (std::uint32_t i = 0; i < cfg_.pipelineDepth; ++i) {
        const sfm::VirtPage page =
            rng_.zipf(cfg_.pages, cfg_.zipfTheta);
        ++stats_.requests;
        const bool hit = svc_.access(tenant_, page);
        if (hit)
            ++stats_.localHits;
        else
            ++stats_.faults;
        // SETs dirty the page: rewrite its content in place (same
        // kind, request-dependent seed) like a value update would.
        // Only resident pages are rewritten — a miss must complete
        // its swap-in first, or the promotion would clobber the new
        // value with the stale compressed image.
        if (hit && rng_.uniformReal() >= cfg_.getRatio) {
            ++stats_.writes;
            const Bytes value = compress::generateCorpus(
                compress::CorpusKind::KeyValue,
                cfg_.seed + stats_.requests, pageBytes);
            svc_.writePage(tenant_, page, value);
        }
    }
    const double mean_gap = seconds(1.0) * cfg_.pipelineDepth
        / cfg_.opsPerSecond;
    eventq().scheduleIn(exponentialGap(rng_, mean_gap),
                        [this] { burst(); });
}

InferenceBatchModel::InferenceBatchModel(
    std::string name, EventQueue &eq,
    service::FarMemoryService &svc, const InferenceBatchConfig &cfg,
    service::TenantConfig tenant_cfg)
    : SimObject(std::move(name), eq), svc_(svc), cfg_(cfg),
      rng_(cfg.seed * 0x9E3779B9ull + 11)
{
    XFM_ASSERT(cfg_.batchesPerSecond > 0.0,
               "inference model needs a positive batch rate");
    XFM_ASSERT(cfg_.activationWindow <= cfg_.activationPages,
               "activation window larger than the region");
    tenant_cfg.pages = cfg_.weightPages + cfg_.activationPages;
    tenant_ = svc_.addTenant(tenant_cfg);
    if (tenant_ == service::invalidTenant)
        fatal(this->name(), ": tenant '", tenant_cfg.name,
              "' was not admitted");
    // Weights look like packed binary (poorly compressible);
    // activations are sparse.
    const Bytes weights = compress::generateCorpus(
        compress::CorpusKind::Base64Blob, cfg_.seed,
        cfg_.weightPages * pageBytes);
    const auto wpages = compress::paginate(weights, pageBytes);
    for (std::size_t p = 0; p < wpages.size(); ++p)
        svc_.writePage(tenant_, p, wpages[p]);
    const Bytes acts = compress::generateCorpus(
        compress::CorpusKind::ZeroHeavy, cfg_.seed + 1,
        cfg_.activationPages * pageBytes);
    const auto apages = compress::paginate(acts, pageBytes);
    for (std::size_t p = 0; p < apages.size(); ++p)
        svc_.writePage(tenant_, cfg_.weightPages + p, apages[p]);
}

void
InferenceBatchModel::start()
{
    const Tick period = static_cast<Tick>(
        seconds(1.0) / cfg_.batchesPerSecond);
    eventq().scheduleIn(std::max<Tick>(1, period),
                        [this] { batch(); });
}

void
InferenceBatchModel::batch()
{
    ++stats_.bursts;

    auto touch = [this](sfm::VirtPage page) {
        ++stats_.requests;
        if (svc_.access(tenant_, page))
            ++stats_.localHits;
        else
            ++stats_.faults;
    };

    // Weight pass: a sequential cursor over the weight region. The
    // full cycle takes weightPages / batchTouches batches, so every
    // weight page is periodically reused with a long gap — exactly
    // the shape the compressed tier serves best.
    for (std::uint32_t i = 0; i < cfg_.batchTouches; ++i) {
        touch(weight_cursor_);
        weight_cursor_ = (weight_cursor_ + 1) % cfg_.weightPages;
    }

    // Activation pass: the live window, then drift. Pages behind
    // the window go fully cold and are the spill scan's fodder.
    for (std::uint32_t i = 0; i < cfg_.activationWindow; ++i) {
        const std::uint64_t off =
            (window_start_ + i) % cfg_.activationPages;
        touch(cfg_.weightPages + off);
    }
    window_start_ =
        (window_start_ + cfg_.driftPerBatch) % cfg_.activationPages;

    const Tick period = static_cast<Tick>(
        seconds(1.0) / cfg_.batchesPerSecond);
    eventq().scheduleIn(std::max<Tick>(1, period),
                        [this] { batch(); });
}

} // namespace workload
} // namespace xfm
