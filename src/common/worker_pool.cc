#include "worker_pool.hh"

#include <algorithm>
#include <atomic>

namespace xfm
{

void
WorkerPool::Task::run()
{
    try {
        fn_();
    } catch (...) {
        std::lock_guard<std::mutex> g(m_);
        error_ = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> g(m_);
        fn_ = nullptr;
        done_ = true;
    }
    cv_.notify_all();
}

void
WorkerPool::Task::wait()
{
    std::unique_lock<std::mutex> g(m_);
    cv_.wait(g, [this] { return done_; });
    if (error_)
        std::rethrow_exception(error_);
}

WorkerPool::WorkerPool(std::size_t workers)
    : workers_(std::max<std::size_t>(1, workers))
{
    threads_.reserve(workers_ - 1);
    for (std::size_t i = 0; i + 1 < workers_; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> g(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

WorkerPool::TaskPtr
WorkerPool::submit(std::function<void()> fn)
{
    auto task = std::make_shared<Task>();
    task->fn_ = std::move(fn);
    ++stats_.tasks;
    if (!parallel()) {
        ++stats_.inlineTasks;
        task->run();
        return task;
    }
    {
        std::lock_guard<std::mutex> g(m_);
        queue_.push_back(task);
    }
    cv_.notify_one();
    return task;
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    ++stats_.parallelLoops;
    if (!parallel() || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Atomic work-stealing counter; helpers and the caller drain it
    // together. fn is captured by reference — safe because every
    // helper task is awaited before returning.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    const auto *body = &fn;
    auto drain = [next, n, body] {
        for (std::size_t i = next->fetch_add(1); i < n;
             i = next->fetch_add(1)) {
            (*body)(i);
        }
    };

    const std::size_t helpers = std::min(threads_.size(), n - 1);
    std::vector<TaskPtr> tasks;
    tasks.reserve(helpers);
    for (std::size_t h = 0; h < helpers; ++h)
        tasks.push_back(submit(drain));
    drain();
    for (auto &t : tasks)
        t->wait();
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        TaskPtr task;
        {
            std::unique_lock<std::mutex> g(m_);
            cv_.wait(g, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task->run();
    }
}

} // namespace xfm
