#include "config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "logging.hh"

namespace xfm
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

Config
Config::parseString(const std::string &text)
{
    Config cfg;
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        const auto eq = trimmed.find('=');
        if (eq == std::string::npos)
            fatal("config line ", lineno, ": expected 'key = value'");
        const std::string key = trim(trimmed.substr(0, eq));
        const std::string value = trim(trimmed.substr(eq + 1));
        if (key.empty())
            fatal("config line ", lineno, ": empty key");
        if (!cfg.values_.count(key))
            cfg.order_.push_back(key);
        cfg.values_[key] = value;
    }
    return cfg;
}

Config
Config::parseFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open config file '", path, "'");
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseString(ss.str());
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t fallback) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const auto v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "': '", it->second,
              "' is not an integer");
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "': '", it->second,
              "' is not a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "': '", it->second,
          "' is not a boolean");
}

std::vector<std::string>
Config::unconsumedKeys() const
{
    std::vector<std::string> out;
    for (const auto &key : order_)
        if (!consumed_.count(key))
            out.push_back(key);
    return out;
}

std::vector<std::string>
Config::keys() const
{
    return order_;
}

} // namespace xfm
