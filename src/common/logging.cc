#include "logging.hh"

#include <atomic>
#include <cstdio>

namespace xfm
{
namespace detail
{

namespace
{
std::atomic<bool> verbose{false};
} // namespace

bool
verboseEnabled()
{
    return verbose.load(std::memory_order_relaxed);
}

void
setVerbose(bool enable)
{
    verbose.store(enable, std::memory_order_relaxed);
}

void
emit(const char *level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail
} // namespace xfm
