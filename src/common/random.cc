#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace xfm
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    XFM_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    XFM_ASSERT(lo <= hi, "uniformRange requires lo <= hi");
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double theta)
{
    XFM_ASSERT(n > 0, "zipf requires n > 0");
    if (theta <= 0.0)
        return uniformInt(n);
    // Inverse-CDF on the continuous bounded Pareto approximation of
    // the zipf rank distribution; adequate for locality generation.
    const double alpha = 1.0 - theta;
    const double u = uniformReal();
    double rank;
    if (std::abs(alpha) < 1e-9) {
        rank = std::pow(static_cast<double>(n), u);
    } else {
        const double nn = std::pow(static_cast<double>(n), alpha);
        rank = std::pow(u * (nn - 1.0) + 1.0, 1.0 / alpha);
    }
    auto idx = static_cast<std::uint64_t>(rank) - 0;
    if (idx >= n)
        idx = n - 1;
    return idx;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    XFM_ASSERT(p > 0.0, "geometric requires p in (0, 1]");
    const double u = uniformReal();
    return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

} // namespace xfm
