/**
 * @file
 * WorkerPool: fixed-size thread pool for deterministic fan-out of
 * embarrassingly-parallel simulator work (per-DIMM shard codec
 * calls, NMA engine jobs, and the sharded event core's per-domain
 * window staging — see sim/event_queue.hh and DESIGN.md §13).
 *
 * Determinism contract: the pool only accelerates wall-clock time,
 * never simulated behavior. Callers hand out independent jobs that
 * each write only their own output slot, then commit results on the
 * calling thread in deterministic (shard-index / submission) order
 * after the barrier. Simulated timing, metrics, and traces are
 * byte-identical for any worker count.
 *
 * `workers` counts total concurrent execution contexts: a pool
 * constructed with workers <= 1 spawns no threads and runs
 * everything inline on the caller (exactly the single-threaded
 * behavior, and the default); workers = N spawns N - 1 threads and
 * the caller participates in parallelFor().
 */

#ifndef XFM_COMMON_WORKER_POOL_HH
#define XFM_COMMON_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xfm
{

/** Fixed-size thread pool; inline when workers <= 1. */
class WorkerPool
{
  public:
    /** A submitted job; wait() blocks until it has run. */
    class Task
    {
      public:
        /**
         * Block until the body finished (inline tasks are born
         * done). Rethrows any exception the body raised.
         */
        void wait();

      private:
        friend class WorkerPool;
        void run();

        std::function<void()> fn_;
        std::mutex m_;
        std::condition_variable cv_;
        bool done_ = false;
        std::exception_ptr error_;
    };
    using TaskPtr = std::shared_ptr<Task>;

    /** Lifetime submission counters (main-thread reads only). */
    struct Stats
    {
        std::uint64_t tasks = 0;
        std::uint64_t inlineTasks = 0;
        std::uint64_t parallelLoops = 0;
    };

    explicit WorkerPool(std::size_t workers = 1);
    ~WorkerPool();
    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Configured execution contexts (>= 1). */
    std::size_t workers() const { return workers_; }

    /** True when background threads exist (workers >= 2). */
    bool parallel() const { return !threads_.empty(); }

    /**
     * Run @p fn — queued to a worker thread when parallel(), run
     * inline before returning otherwise. Submit from the simulation
     * thread only.
     */
    TaskPtr submit(std::function<void()> fn);

    /**
     * Run fn(0) .. fn(n-1), potentially concurrently; the caller
     * participates and the call returns only after every index
     * completed (a barrier). Bodies must write disjoint state;
     * commit results in index order after this returns.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    const Stats &stats() const { return stats_; }

  private:
    void workerLoop();

    std::size_t workers_;
    std::vector<std::thread> threads_;
    std::deque<TaskPtr> queue_;
    std::mutex m_;
    std::condition_variable cv_;
    bool stop_ = false;
    Stats stats_;
};

} // namespace xfm

#endif // XFM_COMMON_WORKER_POOL_HH
