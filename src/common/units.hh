/**
 * @file
 * Unit types and conversion helpers used across the simulator.
 *
 * Simulated time is measured in integer picoseconds (Tick) so DDR
 * timing parameters (fractions of a nanosecond) stay exact. Capacity
 * helpers provide the usual KiB/MiB/GiB shorthands.
 */

#ifndef XFM_COMMON_UNITS_HH
#define XFM_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace xfm
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick
picoseconds(std::uint64_t v)
{
    return v;
}

constexpr Tick
nanoseconds(double v)
{
    return static_cast<Tick>(v * 1e3);
}

constexpr Tick
microseconds(double v)
{
    return static_cast<Tick>(v * 1e6);
}

constexpr Tick
milliseconds(double v)
{
    return static_cast<Tick>(v * 1e9);
}

constexpr Tick
seconds(double v)
{
    return static_cast<Tick>(v * 1e12);
}

constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / 1e12;
}

/** Byte capacities. */
constexpr std::uint64_t
kib(std::uint64_t v)
{
    return v << 10;
}

constexpr std::uint64_t
mib(std::uint64_t v)
{
    return v << 20;
}

constexpr std::uint64_t
gib(std::uint64_t v)
{
    return v << 30;
}

constexpr std::uint64_t
tib(std::uint64_t v)
{
    return v << 40;
}

/** OS page size used throughout the SFM stack. */
constexpr std::uint64_t pageBytes = 4096;

/**
 * Convert a byte count moved over an interval into GB/s
 * (decimal gigabytes, matching DDR marketing figures).
 */
constexpr double
bytesPerTickToGBps(double bytes, Tick interval)
{
    // bytes / picoseconds * 1e12 / 1e9 = bytes/ns
    return interval == 0 ? 0.0 : bytes / static_cast<double>(interval) * 1e3;
}

/** Render a byte count with a binary-unit suffix, e.g. "4.0 MiB". */
std::string formatBytes(std::uint64_t bytes);

/** Render a tick count with an adaptive time suffix, e.g. "3.9 us". */
std::string formatTicks(Tick t);

} // namespace xfm

#endif // XFM_COMMON_UNITS_HH
