/**
 * @file
 * Lightweight statistics collection: scalar counters, running
 * averages, and fixed-bucket histograms. Components own these as
 * plain fields; rendering and export live in the observability
 * layer (src/obs), which holds pointers registered at wiring time.
 */

#ifndef XFM_COMMON_STATS_HH
#define XFM_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace xfm
{

namespace stats
{

/** Monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    Counter &operator++() { ++value_; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Sample mean / min / max tracker. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Linear-bucket histogram over [lo, hi) with out-of-range tails. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Value below which the given fraction of samples fall. */
    double percentile(double p) const;

    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace stats
} // namespace xfm

#endif // XFM_COMMON_STATS_HH
