#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace xfm
{
namespace stats
{

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    XFM_ASSERT(hi > lo && buckets > 0, "invalid histogram bounds");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the percentile sample, at least 1: truncating to 0
    // would report lo for any percentile of a small sample set
    // (e.g. a single-sample histogram's p99).
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(total_))));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return lo_ + width_ * static_cast<double>(i + 1);
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

} // namespace stats
} // namespace xfm
