/**
 * @file
 * Status and error reporting helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * fatal() is for user errors (bad configuration); it throws a
 * FatalError so library users and tests can recover. panic() is for
 * internal invariant violations and aborts the process in release
 * builds as well.
 */

#ifndef XFM_COMMON_LOGGING_HH
#define XFM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace xfm
{

/** Exception thrown by fatal() on unrecoverable user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Global verbosity switch; informational messages honour this. */
bool verboseEnabled();
void setVerbose(bool enable);

void emit(const char *level, const std::string &msg);

} // namespace detail

/** Print an informational message (suppressed unless verbose). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (detail::verboseEnabled())
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user-caused error.
 *
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/**
 * Report an internal invariant violation (a bug) and abort.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** Assert an invariant with a formatted message; panics on failure. */
#define XFM_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond))                                                      \
            ::xfm::panic("assertion '", #cond, "' failed: ",              \
                         ##__VA_ARGS__);                                  \
    } while (0)

} // namespace xfm

#endif // XFM_COMMON_LOGGING_HH
