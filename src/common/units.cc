#include "units.hh"

#include <array>
#include <cstdio>

namespace xfm
{

std::string
formatBytes(std::uint64_t bytes)
{
    static constexpr std::array<const char *, 5> suffix = {
        "B", "KiB", "MiB", "GiB", "TiB"
    };
    double v = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (v >= 1024.0 && idx + 1 < suffix.size()) {
        v /= 1024.0;
        ++idx;
    }
    char buf[48];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix[idx]);
    return buf;
}

std::string
formatTicks(Tick t)
{
    static constexpr std::array<const char *, 5> suffix = {
        "ps", "ns", "us", "ms", "s"
    };
    double v = static_cast<double>(t);
    std::size_t idx = 0;
    while (v >= 1000.0 && idx + 1 < suffix.size()) {
        v /= 1000.0;
        ++idx;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix[idx]);
    return buf;
}

} // namespace xfm
