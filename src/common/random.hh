/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator draw from Rng so runs
 * are reproducible from a single seed. The generator is
 * xoshiro256** (public-domain construction by Blackman & Vigna),
 * implemented here from the published recurrence.
 */

#ifndef XFM_COMMON_RANDOM_HH
#define XFM_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace xfm
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Zipfian-distributed integer in [0, n) with skew theta.
     *
     * Uses the rejection-inversion-free approximation adequate for
     * workload generation (power-law rank-frequency).
     */
    std::uint64_t zipf(std::uint64_t n, double theta);

    /** Geometric draw: number of failures before first success. */
    std::uint64_t geometric(double p);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace xfm

#endif // XFM_COMMON_RANDOM_HH
