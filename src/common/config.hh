/**
 * @file
 * Minimal key=value configuration parser for the simulator CLI.
 *
 * Format: one `key = value` per line; `#` starts a comment; blank
 * lines ignored. Keys are dotted lowercase paths
 * (e.g. `sfm.promotion_rate`). Typed getters record which keys were
 * consumed so unknown keys (typos) can be reported.
 */

#ifndef XFM_COMMON_CONFIG_HH
#define XFM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace xfm
{

/** Parsed configuration with typed, default-aware access. */
class Config
{
  public:
    /** Parse from text. @throws FatalError on malformed lines. */
    static Config parseString(const std::string &text);

    /** Parse a file. @throws FatalError if unreadable/malformed. */
    static Config parseFile(const std::string &path);

    /** True if the key was present in the input. */
    bool has(const std::string &key) const;

    /** Typed getters; return @p fallback when the key is absent.
     *  @throws FatalError when the value does not parse. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback = 0) const;
    double getDouble(const std::string &key,
                     double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Keys present in the input but never read by any getter. */
    std::vector<std::string> unconsumedKeys() const;

    /** All parsed keys in order of first appearance. */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
    mutable std::set<std::string> consumed_;
};

} // namespace xfm

#endif // XFM_COMMON_CONFIG_HH
