/**
 * @file
 * Baseline CPU SFM backend (zswap-style).
 *
 * The CPU reads the cold page from DRAM, compresses it, and stores
 * it via the ZPool; swap-ins reverse the path. Every operation
 * burns modelled CPU cycles (EQ3.4 cost) and, when a MemCtrl is
 * attached, issues the DRAM traffic whose interference Fig. 11
 * measures: a page read plus a compressed write on swap-out, and
 * the converse on swap-in.
 */

#ifndef XFM_SFM_CPU_BACKEND_HH
#define XFM_SFM_CPU_BACKEND_HH

#include <map>
#include <memory>

#include "compress/compressor.hh"
#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "sfm/backend.hh"
#include "sfm/zpool.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace sfm
{

/** Configuration of the baseline backend. */
struct CpuBackendConfig
{
    std::uint64_t localBase = 0;      ///< local region base address
    std::uint64_t localPages = 0;     ///< local region size in pages
    std::uint64_t sfmBase = 0;        ///< SFM region base address
    std::uint64_t sfmBytes = 0;       ///< SFM region size
    compress::Algorithm algorithm = compress::Algorithm::ZstdLike;
    double cpuFreqGHz = 2.6;          ///< Xeon E5-2670 (Sec. 3.1)
    /** Compact automatically when an insert fails. */
    bool autoCompact = true;
    /**
     * zswap's same-filled-page optimisation: pages whose every word
     * repeats one value (zero pages above all) are recorded as a
     * marker instead of being compressed and stored.
     */
    bool sameFilledOptimisation = true;
};

/**
 * zswap-style CPU backend.
 *
 * The red-black tree mapping faulting pages to SFM entries that
 * xfm_swap_out() consults (paper Sec. 6) is std::map here.
 */
class CpuSfmBackend : public SimObject, public SfmBackend
{
  public:
    /**
     * @param mem_ctrl optional: when non-null every swap issues real
     *        DRAM traffic through it (interference experiments).
     */
    CpuSfmBackend(std::string name, EventQueue &eq,
                  const CpuBackendConfig &cfg, dram::PhysMem &mem,
                  dram::MemCtrl *mem_ctrl = nullptr);

    using SfmBackend::swapOut;  // keep the allow_offload overload
    void swapOut(VirtPage page, SwapCallback done) override;
    void swapIn(VirtPage page, bool allow_offload,
                SwapCallback done) override;
    PageState pageState(VirtPage page) const override;
    void compact() override;
    std::uint64_t farPageCount() const override
    {
        return entries_.size() + same_filled_.size();
    }
    std::uint64_t storedCompressedBytes() const override
    {
        return pool_.usedBytes();
    }
    const BackendStats &stats() const override { return stats_; }

    /** Local frame address of a virtual page. */
    std::uint64_t
    frameAddr(VirtPage page) const
    {
        return cfg_.localBase + page * pageBytes;
    }

    Bytes readLocalPage(VirtPage page) const override
    {
        return mem_.read(frameAddr(page), pageBytes);
    }
    void writeLocalPage(VirtPage page, ByteSpan data) override
    {
        mem_.write(frameAddr(page), data);
    }

    const ZPool &pool() const { return pool_; }
    const CpuBackendConfig &config() const { return cfg_; }

    /** Register backend + ZPool metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);

    /**
     * Attach a span tracer (null detaches). Each swap records a
     * SwapOut/SwapIn request span with its CpuCompute leg.
     */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

    /** Convert CPU cycles to simulated time. */
    Tick
    cyclesToTicks(double cycles) const
    {
        return static_cast<Tick>(cycles / cfg_.cpuFreqGHz * 1000.0);
    }

  protected:
    /** Synchronous CPU compression path (shared with XFM fallback). */
    void cpuSwapOut(VirtPage page, SwapCallback done);
    void cpuSwapIn(VirtPage page, SwapCallback done);

    CpuBackendConfig cfg_;
    dram::PhysMem &mem_;
    dram::MemCtrl *mem_ctrl_;
    ZPool pool_;
    std::unique_ptr<compress::Compressor> codec_;
    std::map<VirtPage, ZHandle> entries_;  ///< the rb-tree lookup
    /** Same-filled pages: virtual page -> 64-bit fill pattern. */
    std::map<VirtPage, std::uint64_t> same_filled_;
    BackendStats stats_;
    obs::Tracer *tracer_ = nullptr;
    /** Page/block staging reused across swaps (zero steady-state
     *  allocation once grown to the working size). */
    Bytes raw_scratch_;
    Bytes block_scratch_;
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_CPU_BACKEND_HH
