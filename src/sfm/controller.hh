/**
 * @file
 * SFM_Controller: the far-memory control plane.
 *
 * Implements the cold-page identification policy the paper's cost
 * model assumes (k-stale scanning a la Google's kstaled: a page is
 * cold after @c coldThreshold without an access), demand swap-ins
 * on faults (CPU decompression by default, per Sec. 6), and a
 * sequential prefetcher that promotes upcoming pages with
 * do_offload asserted so the NMA can serve them from refresh
 * windows.
 */

#ifndef XFM_SFM_CONTROLLER_HH
#define XFM_SFM_CONTROLLER_HH

#include <vector>

#include "common/stats.hh"
#include "obs/registry.hh"
#include "sfm/backend.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace sfm
{

/**
 * Dense per-page flag set.
 *
 * The controller consults its in-flight and prefetched sets on
 * every application access; at 1000-tenant fleet scale the rb-tree
 * `std::set<VirtPage>` paid pointer-chasing and allocation on the
 * fault path. Page numbers are dense [0, num_pages), so a flat
 * bitmap gives O(1) test/set/clear with one cache line per 512
 * pages and no allocation after construction.
 */
class PageFlags
{
  public:
    explicit PageFlags(std::uint64_t pages)
        : bits_((pages + 63) / 64, 0)
    {}

    bool
    test(VirtPage p) const
    {
        return (bits_[p >> 6] >> (p & 63)) & 1;
    }

    void set(VirtPage p) { bits_[p >> 6] |= 1ull << (p & 63); }

    /** Clear the flag; returns whether it was set. */
    bool
    clear(VirtPage p)
    {
        const std::uint64_t mask = 1ull << (p & 63);
        const bool was = bits_[p >> 6] & mask;
        bits_[p >> 6] &= ~mask;
        return was;
    }

  private:
    std::vector<std::uint64_t> bits_;
};

/** Control-plane policy knobs. */
struct ControllerConfig
{
    /** Pages untouched this long are cold (Google: 120 s). */
    Tick coldThreshold = seconds(120.0);
    /** Cold-page scan period. */
    Tick scanInterval = seconds(1.0);
    /** Swap-out batch bound per scan. */
    std::size_t maxSwapOutsPerScan = 64;
    /** Pages promoted ahead of a fault (along the detected stride). */
    std::size_t prefetchDepth = 2;
    /** Prefetch promotions may be offloaded to the NMA. */
    bool offloadPrefetch = true;
    /**
     * Detect non-unit strides from the fault history instead of
     * always prefetching the next sequential pages (the paper's
     * closing point: XFM's benefit grows with the controller's
     * proficiency at predicting access patterns).
     */
    bool stridePrefetch = true;
};

/** Controller statistics. */
struct ControllerStats
{
    std::uint64_t scans = 0;
    std::uint64_t coldPagesFound = 0;
    std::uint64_t swapOutsInitiated = 0;
    std::uint64_t demandFaults = 0;
    std::uint64_t prefetchesInitiated = 0;
    std::uint64_t prefetchHits = 0;  ///< fault avoided by prefetch
    std::uint64_t strideDetections = 0;  ///< non-unit stride locked
    stats::Average faultServiceNs;   ///< demand swap-in latency
};

/**
 * Far-memory control plane over one backend.
 */
class SfmController : public SimObject
{
  public:
    SfmController(std::string name, EventQueue &eq,
                  const ControllerConfig &cfg, SfmBackend &backend,
                  std::uint64_t num_pages);

    /** Begin periodic cold-page scanning. */
    void start();

    /**
     * The application touched @p page.
     *
     * Local pages just refresh their access stamp. Far pages incur
     * a demand fault (CPU swap-in) and trigger sequential prefetch
     * of the following pages.
     *
     * @retval true the access hit local memory.
     * @retval false a demand fault was taken.
     */
    bool recordAccess(VirtPage page);

    /** Pages tracked by the controller. */
    std::uint64_t numPages() const { return num_pages_; }

    const ControllerStats &stats() const { return stats_; }

    /** Register control-plane metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);

  private:
    void scan();
    void prefetchAround(VirtPage page);

    ControllerConfig cfg_;
    SfmBackend &backend_;
    std::uint64_t num_pages_;
    bool started_ = false;

    std::vector<Tick> last_access_;
    PageFlags inflight_;
    PageFlags prefetched_;  ///< promoted but not yet touched

    /** Fault-stream stride detector state. */
    VirtPage last_fault_ = ~VirtPage(0);
    std::int64_t last_stride_ = 0;
    std::int64_t confirmed_stride_ = 1;

    ControllerStats stats_;
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_CONTROLLER_HH
