#include "sfm/tier_manager.hh"

#include <algorithm>
#include <utility>

#include "common/config.hh"

namespace xfm
{
namespace sfm
{
namespace
{

/** Group id of pages never assigned to a group. */
constexpr std::uint32_t ungrouped = ~0u;

/** Trace argument encoding a transition edge: from << 2 | to. */
std::uint64_t
edgeArg(Tier from, Tier to)
{
    return (static_cast<std::uint64_t>(from) << 2) |
           static_cast<std::uint64_t>(to);
}

} // namespace

const char *
tierPolicyName(TierPolicy p)
{
    switch (p) {
      case TierPolicy::Auto: return "auto";
      case TierPolicy::XfmFirst: return "xfm_first";
      case TierPolicy::DfmFirst: return "dfm_first";
    }
    return "unknown";
}

TierPolicy
tierPolicyFromString(const std::string &s)
{
    if (s == "auto")
        return TierPolicy::Auto;
    if (s == "xfm_first")
        return TierPolicy::XfmFirst;
    if (s == "dfm_first")
        return TierPolicy::DfmFirst;
    fatal("unknown tier policy '", s,
          "' (expected auto | xfm_first | dfm_first)");
}

TierConfig
TierConfig::fromConfig(Config &cfg)
{
    TierConfig t;
    t.enabled = cfg.getBool("tier.enabled", t.enabled);
    if (cfg.has("tier.policy"))
        t.policy = tierPolicyFromString(cfg.getString("tier.policy"));
    t.promoteWatermark = static_cast<std::uint32_t>(
        cfg.getU64("tier.promote_watermark", t.promoteWatermark));
    if (cfg.has("tier.scan_ms"))
        t.scanInterval = milliseconds(cfg.getDouble("tier.scan_ms"));
    if (cfg.has("tier.spill_cold_ms"))
        t.spillColdThreshold =
            milliseconds(cfg.getDouble("tier.spill_cold_ms"));
    t.maxSpillsPerScan = cfg.getU64("tier.max_spills_per_scan",
                                    t.maxSpillsPerScan);
    t.xfmCapacityPages =
        cfg.getU64("tier.xfm_capacity_pages", t.xfmCapacityPages);
    t.targetPromotionsPerSec =
        cfg.getDouble("tier.target_promotions_per_sec",
                      t.targetPromotionsPerSec);
    t.backoffFactor =
        cfg.getDouble("tier.backoff_factor", t.backoffFactor);
    t.probeStep = cfg.getU64("tier.probe_step", t.probeStep);
    t.dfmBytes = cfg.getU64("tier.dfm_bytes", t.dfmBytes);
    if (cfg.has("tier.dfm_link_ns"))
        t.dfmLinkLatency =
            nanoseconds(cfg.getDouble("tier.dfm_link_ns"));
    t.dfmLinkGBps = cfg.getDouble("tier.dfm_gbps", t.dfmLinkGBps);
    return t;
}

TierManager::TierManager(std::string name, EventQueue &eq,
                         const TierConfig &cfg, SfmBackend &primary,
                         std::uint64_t num_pages)
    : SimObject(std::move(name), eq), cfg_(cfg), primary_(primary),
      num_pages_(num_pages), tier_(num_pages, Tier::Near),
      busy_(num_pages, 0), last_access_(num_pages, 0),
      access_count_(num_pages, 0), group_(num_pages, ungrouped),
      spill_batch_(cfg.maxSpillsPerScan)
{
    // The spill tier mirrors every local frame (transition staging)
    // and appends the statically provisioned pool behind it.
    const std::uint64_t mirror = num_pages_ * pageBytes;
    spill_mem_ =
        std::make_unique<dram::PhysMem>(mirror + cfg_.dfmBytes);
    DfmBackendConfig dcfg;
    dcfg.localBase = 0;
    dcfg.localPages = num_pages_;
    dcfg.poolBase = mirror;
    dcfg.poolBytes = cfg_.dfmBytes;
    dcfg.linkLatency = cfg_.dfmLinkLatency;
    dcfg.linkGBps = cfg_.dfmLinkGBps;
    dcfg.faults = cfg_.faults;
    dcfg.retry = cfg_.retry;
    spill_ = std::make_unique<DfmBackend>(this->name() + ".dfm", eq,
                                          dcfg, *spill_mem_);

    // The primary backend may reclaim Far pages outside any swap
    // operation (quarantine-cap eviction frees the poisoned image
    // and re-establishes the page from its local frames). Keep the
    // tier map coherent, or the next swap-in of a stale XFM entry
    // faults on a page the backend no longer holds.
    primary_.setReclaimHook(
        [this](VirtPage page, std::uint32_t freed) {
            if (tier_[page] == Tier::Xfm)
                commit(page, Tier::Near, freed, true);
        });
}

void
TierManager::start()
{
    if (started_)
        return;
    started_ = true;
    if (cfg_.scanInterval)
        eventq().scheduleIn(cfg_.scanInterval,
                            [this] { spillScan(); });
}

void
TierManager::noteAccess(VirtPage page, Tick now)
{
    last_access_[page] = now;
    if (access_count_[page] != ~0u)
        ++access_count_[page];
}

TierPolicy
TierManager::pagePolicy(VirtPage page) const
{
    const std::uint32_t g = group_[page];
    if (g != ungrouped && g < group_policy_.size())
        return group_policy_[g];
    return cfg_.policy;
}

void
TierManager::assignGroup(VirtPage first, std::uint64_t count,
                         std::uint32_t group)
{
    for (std::uint64_t i = 0; i < count; ++i)
        group_[first + i] = group;
}

void
TierManager::setGroupPolicy(std::uint32_t group, TierPolicy policy)
{
    if (group_policy_.size() <= group)
        group_policy_.resize(group + 1, cfg_.policy);
    group_policy_[group] = policy;
}

PageState
TierManager::pageState(VirtPage page) const
{
    return tier_[page] == Tier::Near ? PageState::Local
                                     : PageState::Far;
}

void
TierManager::commit(VirtPage page, Tier to, std::uint32_t freed,
                    bool internal, bool record)
{
    const Tier from = tier_[page];
    if (from == to)
        return;
    tier_[page] = to;
    if (from == Tier::Xfm)
        --xfm_pages_;
    else if (from == Tier::Dfm)
        --dfm_pages_;
    if (to == Tier::Xfm)
        ++xfm_pages_;
    else if (to == Tier::Dfm)
        ++dfm_pages_;

    // A tier change resets the frequency estimate: demoted pages
    // must re-earn hotness, promoted pages start from their fault.
    access_count_[page] = to == Tier::Near ? 1 : access_count_[page] / 2;

    if (record) {
        switch (to) {
          case Tier::Near:
            if (from == Tier::Xfm)
                ++tier_stats_.promotedFromXfm;
            else
                ++tier_stats_.promotedFromDfm;
            break;
          case Tier::Xfm:
            ++tier_stats_.demotedNearToXfm;
            break;
          case Tier::Dfm:
            if (from == Tier::Near)
                ++tier_stats_.demotedNearToDfm;
            else
                ++tier_stats_.demotedXfmToDfm;
            break;
        }
    }

    if (tracer_)
        tracer_->point(tracer_->begin(), obs::Stage::TierShift,
                       curTick(), edgeArg(from, to));
    if (hook_)
        hook_(page, from, to, freed, internal);
}

void
TierManager::rejectBusy(VirtPage page, SwapCallback &done)
{
    SwapOutcome o;
    o.page = page;
    o.success = false;
    o.completed = curTick();
    o.rejected = RejectReason::Busy;
    ++stats_.rejectedSwapOuts;
    if (done)
        done(o);
}

void
TierManager::demoteToXfm(VirtPage page, bool allow_offload,
                         SwapCallback done)
{
    busy_[page] = 1;
    primary_.swapOut(
        page, allow_offload,
        [this, page, done = std::move(done)](const SwapOutcome &o) {
            busy_[page] = 0;
            ++stats_.swapOuts;
            if (o.success) {
                commit(page, Tier::Xfm, 0, false);
                if (o.usedCpu)
                    ++stats_.cpuSwapOuts;
                stats_.bytesCompressed += pageBytes;
            } else {
                ++stats_.rejectedSwapOuts;
            }
            if (done)
                done(o);
        });
}

void
TierManager::spillLeg(VirtPage page, Tier from, std::uint32_t freed,
                      bool internal, SwapCallback done)
{
    // Stage the current frame content into the spill tier's mirror,
    // then push it across the link. The primary frame is left
    // untouched (non-destructive invariant): it keeps holding the
    // authoritative bytes while the page sits in DFM.
    spill_->writeLocalPage(page, primary_.readLocalPage(page));
    spill_->swapOut(
        page, [this, page, from, freed, internal,
               done = std::move(done)](const SwapOutcome &o) {
            busy_[page] = 0;
            if (!internal) {
                ++stats_.swapOuts;
                if (o.success)
                    ++stats_.cpuSwapOuts;
                else
                    ++stats_.rejectedSwapOuts;
            }
            if (o.success) {
                commit(page, Tier::Dfm, freed, internal, !internal);
                if (internal)
                    ++tier_stats_.demotedXfmToDfm;
            } else {
                ++tier_stats_.spillRejects;
                // An internal spill already promoted the page out of
                // XFM; it stays Near (committed by the caller).
            }
            SwapOutcome out = o;
            out.servedTier = Tier::Dfm;
            out.compressedSize = 0;
            out.usedCpu = true;
            if (done)
                done(out);
        });
}

void
TierManager::swapOut(VirtPage page, SwapCallback done)
{
    swapOut(page, true, std::move(done));
}

void
TierManager::swapOut(VirtPage page, bool allow_offload,
                     SwapCallback done)
{
    if (tier_[page] != Tier::Near)
        fatal(name(), ": swapOut of non-NEAR page ", page, " (",
              tierName(tier_[page]), ")");
    if (busy_[page]) {
        rejectBusy(page, done);
        return;
    }

    bool to_dfm = false;
    switch (pagePolicy(page)) {
      case TierPolicy::XfmFirst:
        break;
      case TierPolicy::DfmFirst:
        to_dfm = true;
        break;
      case TierPolicy::Auto:
        // Hot pages go to the cheap-to-recover compressed tier;
        // cold strangers spill straight to DFM.
        to_dfm = access_count_[page] < cfg_.promoteWatermark;
        break;
    }
    if (to_dfm && spill_->freeSlots() == 0)
        to_dfm = false;  // statically provisioned pool is full

    if (to_dfm) {
        busy_[page] = 1;
        spillLeg(page, Tier::Near, 0, false, std::move(done));
    } else {
        demoteToXfm(page, allow_offload, std::move(done));
    }
}

void
TierManager::swapIn(VirtPage page, bool allow_offload,
                    SwapCallback done)
{
    if (tier_[page] == Tier::Near)
        fatal(name(), ": swapIn of NEAR page ", page);
    if (busy_[page]) {
        rejectBusy(page, done);
        return;
    }

    if (tier_[page] == Tier::Xfm) {
        busy_[page] = 1;
        primary_.swapIn(
            page, allow_offload,
            [this, page,
             done = std::move(done)](const SwapOutcome &o) {
                busy_[page] = 0;
                ++stats_.swapIns;
                if (o.success) {
                    commit(page, Tier::Near, o.compressedSize, false);
                    if (o.usedCpu)
                        ++stats_.cpuSwapIns;
                    stats_.bytesDecompressed += pageBytes;
                }
                if (done)
                    done(o);
            });
        return;
    }

    // DFM promotion: pull the page across the link, then restore the
    // primary frame from the spill mirror.
    busy_[page] = 1;
    spill_->swapIn(
        page, false,
        [this, page, done = std::move(done)](const SwapOutcome &o) {
            busy_[page] = 0;
            ++stats_.swapIns;
            if (o.success) {
                primary_.writeLocalPage(page,
                                        spill_->readLocalPage(page));
                commit(page, Tier::Near, 0, false);
                ++stats_.cpuSwapIns;
                stats_.bytesDecompressed += pageBytes;
            }
            SwapOutcome out = o;
            out.servedTier = Tier::Dfm;
            out.compressedSize = 0;
            out.usedCpu = true;
            if (done)
                done(out);
        });
}

void
TierManager::spillFromXfm(VirtPage page)
{
    // Two-leg internal transition: decompress out of the primary
    // pool (offload allowed — this is maintenance, not a demand
    // fault), then push the restored frame across the link. If the
    // link leg fails the page simply stays Near: its frame is intact
    // and the next cold scan will demote it again.
    busy_[page] = 1;
    primary_.swapIn(
        page, true, [this, page](const SwapOutcome &o) {
            if (!o.success) {
                busy_[page] = 0;
                ++tier_stats_.spillRejects;
                return;
            }
            const std::uint32_t freed = o.compressedSize;
            commit(page, Tier::Near, freed, true, false);
            spillLeg(page, Tier::Xfm, 0, true, nullptr);
        });
}

void
TierManager::spillScan()
{
    ++tier_stats_.spillScans;

    // Senpai-style pressure loop: promotions faster than the target
    // mean the spill tier is eating hot pages — back off
    // multiplicatively. Quiet intervals probe the batch back up.
    const std::uint64_t promoted = stats_.swapIns;
    const double interval_s = static_cast<double>(cfg_.scanInterval) /
                              static_cast<double>(seconds(1.0));
    const double rate =
        static_cast<double>(promoted - promotions_at_last_scan_) /
        interval_s;
    promotions_at_last_scan_ = promoted;
    if (rate > cfg_.targetPromotionsPerSec) {
        spill_batch_ = static_cast<std::size_t>(
            static_cast<double>(spill_batch_) * cfg_.backoffFactor);
        ++tier_stats_.pressureBackoffs;
    } else if (spill_batch_ < cfg_.maxSpillsPerScan) {
        spill_batch_ = std::min(cfg_.maxSpillsPerScan,
                                spill_batch_ + cfg_.probeStep);
        ++tier_stats_.pressureProbes;
    }

    std::size_t budget = spill_batch_;
    const Tick now = curTick();

    // Pass 1 — second-level coldness, ascending page order for
    // determinism: XFM pages untouched past the threshold spill,
    // unless the frequency watermark holds them back. Pages whose
    // group policy pins them to the compressed tier (xfm_first)
    // never spill.
    for (VirtPage p = 0; p < num_pages_ && budget; ++p) {
        if (tier_[p] != Tier::Xfm || busy_[p])
            continue;
        if (pagePolicy(p) == TierPolicy::XfmFirst)
            continue;
        if (now - last_access_[p] < cfg_.spillColdThreshold)
            continue;
        if (access_count_[p] >= cfg_.promoteWatermark) {
            ++tier_stats_.watermarkHolds;
            continue;
        }
        --budget;
        spillFromXfm(p);
    }

    // Pass 2 — capacity pressure: when the XFM tier overflows its
    // target, evict the coldest pages regardless of watermark.
    if (cfg_.xfmCapacityPages && xfm_pages_ > cfg_.xfmCapacityPages &&
        budget) {
        std::vector<std::pair<Tick, VirtPage>> victims;
        for (VirtPage p = 0; p < num_pages_; ++p)
            if (tier_[p] == Tier::Xfm && !busy_[p] &&
                pagePolicy(p) != TierPolicy::XfmFirst)
                victims.emplace_back(last_access_[p], p);
        std::sort(victims.begin(), victims.end());
        std::uint64_t excess = xfm_pages_ - cfg_.xfmCapacityPages;
        for (const auto &[t, p] : victims) {
            if (!budget || !excess)
                break;
            --budget;
            --excess;
            spillFromXfm(p);
        }
    }

    eventq().scheduleIn(cfg_.scanInterval, [this] { spillScan(); });
}

void
TierManager::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".tier.";
    r.counter(p + "demotedNearToXfm", &tier_stats_.demotedNearToXfm,
              "pages demoted NEAR -> XFM (compressed tier)");
    r.counter(p + "demotedNearToDfm", &tier_stats_.demotedNearToDfm,
              "pages demoted NEAR -> DFM (spill tier)");
    r.counter(p + "demotedXfmToDfm", &tier_stats_.demotedXfmToDfm,
              "pages spilled XFM -> DFM by the maintenance scan");
    r.counter(p + "promotedFromXfm", &tier_stats_.promotedFromXfm,
              "pages promoted XFM -> NEAR");
    r.counter(p + "promotedFromDfm", &tier_stats_.promotedFromDfm,
              "pages promoted DFM -> NEAR");
    r.counter(p + "spillScans", &tier_stats_.spillScans,
              "spill-scan passes executed");
    r.counter(p + "spillRejects", &tier_stats_.spillRejects,
              "spill legs that failed and left the page in place");
    r.counter(p + "watermarkHolds", &tier_stats_.watermarkHolds,
              "spill candidates held in XFM by the watermark");
    r.counter(p + "pressureBackoffs", &tier_stats_.pressureBackoffs,
              "spill-batch multiplicative backoffs");
    r.counter(p + "pressureProbes", &tier_stats_.pressureProbes,
              "spill-batch additive probes");
    r.derived(p + "nearPages",
              [this] { return static_cast<double>(nearPages()); },
              "pages currently resident in near DRAM");
    r.derived(p + "xfmPages",
              [this] { return static_cast<double>(xfm_pages_); },
              "pages currently in the compressed tier");
    r.derived(p + "dfmPages",
              [this] { return static_cast<double>(dfm_pages_); },
              "pages currently in the spill tier");
    r.derived(p + "spillBatch",
              [this] {
                  return static_cast<double>(spill_batch_);
              },
              "current pressure-adapted spill batch");
    spill_->registerMetrics(r);
}

void
TierManager::setTracer(obs::Tracer *t)
{
    tracer_ = t;
    spill_->setTracer(t);
}

} // namespace sfm
} // namespace xfm
