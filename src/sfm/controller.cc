#include "controller.hh"

#include "common/logging.hh"

namespace xfm
{
namespace sfm
{

SfmController::SfmController(std::string name, EventQueue &eq,
                             const ControllerConfig &cfg,
                             SfmBackend &backend,
                             std::uint64_t num_pages)
    : SimObject(std::move(name), eq), cfg_(cfg), backend_(backend),
      num_pages_(num_pages), last_access_(num_pages, 0),
      inflight_(num_pages), prefetched_(num_pages)
{
    XFM_ASSERT(num_pages_ > 0, "controller needs at least one page");
}

void
SfmController::start()
{
    if (started_)
        return;
    started_ = true;
    eventq().scheduleIn(cfg_.scanInterval, [this] { scan(); });
}

void
SfmController::scan()
{
    ++stats_.scans;
    std::size_t initiated = 0;
    for (VirtPage p = 0;
         p < num_pages_ && initiated < cfg_.maxSwapOutsPerScan; ++p) {
        if (backend_.pageState(p) != PageState::Local)
            continue;
        if (inflight_.test(p))
            continue;
        if (curTick() - last_access_[p] < cfg_.coldThreshold)
            continue;
        ++stats_.coldPagesFound;
        ++stats_.swapOutsInitiated;
        ++initiated;
        inflight_.set(p);
        backend_.swapOut(p, [this, p](const SwapOutcome &) {
            inflight_.clear(p);
        });
    }
    eventq().scheduleIn(cfg_.scanInterval, [this] { scan(); });
}

void
SfmController::prefetchAround(VirtPage page)
{
    // Stride detection: two consecutive faults with the same delta
    // lock that delta in as the prefetch direction.
    if (cfg_.stridePrefetch && last_fault_ != ~VirtPage(0)) {
        const std::int64_t stride = static_cast<std::int64_t>(page)
            - static_cast<std::int64_t>(last_fault_);
        if (stride != 0 && stride == last_stride_) {
            if (confirmed_stride_ != stride) {
                confirmed_stride_ = stride;
                ++stats_.strideDetections;
            }
        }
        last_stride_ = stride;
    }
    last_fault_ = page;
    const std::int64_t step =
        cfg_.stridePrefetch ? confirmed_stride_ : 1;

    for (std::size_t d = 1; d <= cfg_.prefetchDepth; ++d) {
        const std::int64_t target = static_cast<std::int64_t>(page)
            + step * static_cast<std::int64_t>(d);
        if (target < 0
            || target >= static_cast<std::int64_t>(num_pages_))
            break;
        const VirtPage next = static_cast<VirtPage>(target);
        if (backend_.pageState(next) != PageState::Far)
            continue;
        if (inflight_.test(next))
            continue;
        ++stats_.prefetchesInitiated;
        inflight_.set(next);
        prefetched_.set(next);
        // Stamp the page so the next scan does not immediately
        // re-demote what we just promoted.
        last_access_[next] = curTick();
        backend_.swapIn(next, cfg_.offloadPrefetch,
                        [this, next](const SwapOutcome &) {
            inflight_.clear(next);
        });
    }
}

bool
SfmController::recordAccess(VirtPage page)
{
    XFM_ASSERT(page < num_pages_, "access beyond address space");
    last_access_[page] = curTick();
    backend_.noteAccess(page, curTick());

    if (backend_.pageState(page) == PageState::Local) {
        if (prefetched_.clear(page)) {
            ++stats_.prefetchHits;
            // The stream advanced onto a prefetched page: keep the
            // stride detector trained and run further ahead.
            prefetchAround(page);
        }
        return true;
    }

    // Demand fault: synchronous CPU swap-in (do_offload deasserted),
    // then prefetch the pages a sequential scan would touch next.
    ++stats_.demandFaults;
    const Tick fault_start = curTick();
    if (!inflight_.test(page)) {
        inflight_.set(page);
        backend_.swapIn(page, false,
                        [this, page, fault_start](const SwapOutcome &o) {
            inflight_.clear(page);
            if (o.success)
                stats_.faultServiceNs.sample(
                    ticksToNs(o.completed - fault_start));
        });
    }
    prefetchAround(page);
    return false;
}

void
SfmController::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "scans", &stats_.scans);
    r.counter(p + "coldPagesFound", &stats_.coldPagesFound);
    r.counter(p + "swapOutsInitiated", &stats_.swapOutsInitiated);
    r.counter(p + "demandFaults", &stats_.demandFaults);
    r.counter(p + "prefetchesInitiated",
              &stats_.prefetchesInitiated);
    r.counter(p + "prefetchHits", &stats_.prefetchHits,
              "faults avoided by prefetch");
    r.counter(p + "strideDetections", &stats_.strideDetections,
              "non-unit strides locked");
    r.average(p + "faultServiceNs", &stats_.faultServiceNs,
              "demand swap-in latency");
}

} // namespace sfm
} // namespace xfm
