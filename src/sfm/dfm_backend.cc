#include "dfm_backend.hh"

#include "common/logging.hh"

namespace xfm
{
namespace sfm
{

DfmBackend::DfmBackend(std::string name, EventQueue &eq,
                       const DfmBackendConfig &cfg,
                       dram::PhysMem &mem)
    : SimObject(std::move(name), eq), cfg_(cfg), mem_(mem),
      injector_(cfg.faults)
{
    XFM_ASSERT(cfg_.localPages > 0, "local region must be non-empty");
    XFM_ASSERT(cfg_.poolBytes >= pageBytes,
               "pool must hold at least one page");
    XFM_ASSERT(cfg_.linkGBps > 0, "link bandwidth must be positive");
    // Static provisioning: pre-build the slot free list.
    free_slots_.reserve(poolSlots());
    for (std::uint64_t s = poolSlots(); s-- > 0;)
        free_slots_.push_back(s);
}

Tick
DfmBackend::pageTransferTime() const
{
    const double ns =
        static_cast<double>(pageBytes) / cfg_.linkGBps;
    return cfg_.linkLatency + nanoseconds(ns);
}

bool
DfmBackend::transferPage(Tick &total, std::uint32_t &retries)
{
    total = pageTransferTime();
    retries = 0;
    if (!injector_.armed())
        return true;
    for (std::uint32_t attempt = 1;; ++attempt) {
        if (injector_.shouldInject(fault::FaultSite::DfmLinkDelay)) {
            ++fault_stats_.linkDelays;
            total += injector_.plan().dfmDelayPenalty;
        }
        if (!injector_.shouldInject(fault::FaultSite::DfmLinkDrop))
            return true;
        ++fault_stats_.linkDrops;
        if (attempt >= cfg_.retry.maxAttempts) {
            ++fault_stats_.deliveryFailures;
            return false;
        }
        ++fault_stats_.linkRetries;
        ++retries;
        total += cfg_.retry.backoffFor(attempt - 1)
            + pageTransferTime();
    }
}

void
DfmBackend::swapOut(VirtPage page, SwapCallback done)
{
    XFM_ASSERT(page < cfg_.localPages, "page out of range");
    if (entries_.count(page))
        fatal("swapOut: page ", page, " already in far memory");

    SwapOutcome outcome;
    outcome.page = page;
    if (free_slots_.empty()) {
        // Statically provisioned pool is full: nothing reclaims it.
        ++stats_.rejectedSwapOuts;
        outcome.success = false;
        outcome.completed = curTick();
        if (done)
            done(outcome);
        return;
    }
    Tick total;
    std::uint32_t retries;
    const bool delivered = transferPage(total, retries);
    outcome.retries = retries;
    std::uint64_t tid = 0;
    if (tracer_) {
        tid = tracer_->begin();
        tracer_->record(tid, obs::Stage::SwapOut, curTick(),
                        curTick() + total);
        tracer_->record(tid, obs::Stage::DfmLink, curTick(),
                        curTick() + total, retries);
    }
    if (!delivered) {
        // Retries exhausted: the page stays Local and the slot stays
        // free; the caller sees the failure after the wasted link
        // time and can degrade.
        outcome.success = false;
        eventq().scheduleIn(total, [outcome, done, tid,
                                    this]() mutable {
            outcome.completed = curTick();
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Complete, curTick(),
                               obs::outcomeFailed);
            if (done)
                done(outcome);
        });
        return;
    }
    const std::uint64_t slot = free_slots_.back();
    free_slots_.pop_back();

    const Bytes raw = mem_.read(frameAddr(page), pageBytes);
    mem_.write(cfg_.poolBase + slot * pageBytes, raw);
    entries_.emplace(page, slot);
    ++stats_.swapOuts;
    outcome.success = true;
    outcome.compressedSize = pageBytes;  // uncompressed slot

    eventq().scheduleIn(total, [outcome, done, tid,
                                this]() mutable {
        outcome.completed = curTick();
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Complete, curTick(),
                           obs::outcomeCpu);
        if (done)
            done(outcome);
    });
}

void
DfmBackend::swapIn(VirtPage page, bool allow_offload,
                   SwapCallback done)
{
    (void)allow_offload;  // no accelerator on the DFM path
    auto it = entries_.find(page);
    if (it == entries_.end())
        fatal("swapIn: page ", page, " is not in far memory");

    SwapOutcome outcome;
    outcome.page = page;

    Tick total;
    std::uint32_t retries;
    const bool delivered = transferPage(total, retries);
    outcome.retries = retries;
    std::uint64_t tid = 0;
    if (tracer_) {
        tid = tracer_->begin();
        tracer_->record(tid, obs::Stage::SwapIn, curTick(),
                        curTick() + total);
        tracer_->record(tid, obs::Stage::DfmLink, curTick(),
                        curTick() + total, retries);
    }
    if (!delivered) {
        // The pool copy is intact; the page stays Far so a later
        // swap-in can still recover it once the link heals.
        outcome.success = false;
        eventq().scheduleIn(total, [outcome, done, tid,
                                    this]() mutable {
            outcome.completed = curTick();
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Complete, curTick(),
                               obs::outcomeFailed);
            if (done)
                done(outcome);
        });
        return;
    }
    const std::uint64_t slot = it->second;
    const Bytes raw =
        mem_.read(cfg_.poolBase + slot * pageBytes, pageBytes);
    mem_.write(frameAddr(page), raw);
    free_slots_.push_back(slot);
    entries_.erase(it);
    ++stats_.swapIns;
    outcome.success = true;
    outcome.compressedSize = pageBytes;
    eventq().scheduleIn(total, [outcome, done, tid,
                                this]() mutable {
        outcome.completed = curTick();
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Complete, curTick(),
                           obs::outcomeCpu);
        if (done)
            done(outcome);
    });
}

PageState
DfmBackend::pageState(VirtPage page) const
{
    return entries_.count(page) ? PageState::Far : PageState::Local;
}

void
DfmBackend::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "swapOuts", &stats_.swapOuts);
    r.counter(p + "swapIns", &stats_.swapIns);
    r.counter(p + "rejectedSwapOuts", &stats_.rejectedSwapOuts,
              "pool statically full");
    r.counter(p + "link.delays", &fault_stats_.linkDelays,
              "injected latency spikes");
    r.counter(p + "link.drops", &fault_stats_.linkDrops,
              "injected transfer drops");
    r.counter(p + "link.retries", &fault_stats_.linkRetries);
    r.counter(p + "link.deliveryFailures",
              &fault_stats_.deliveryFailures,
              "retry budget exhausted");
    r.derived(p + "pagesFar",
              [this] { return static_cast<double>(farPageCount()); });
    r.derived(p + "pool.freeSlots",
              [this] { return static_cast<double>(freeSlots()); });
}

} // namespace sfm
} // namespace xfm
