#include "cpu_backend.hh"

#include <cstring>

#include "common/logging.hh"

namespace xfm
{
namespace sfm
{

CpuSfmBackend::CpuSfmBackend(std::string name, EventQueue &eq,
                             const CpuBackendConfig &cfg,
                             dram::PhysMem &mem,
                             dram::MemCtrl *mem_ctrl)
    : SimObject(std::move(name), eq), cfg_(cfg), mem_(mem),
      mem_ctrl_(mem_ctrl),
      pool_(mem, cfg.sfmBase, cfg.sfmBytes),
      codec_(compress::makeCompressor(cfg.algorithm))
{
    XFM_ASSERT(cfg_.localPages > 0, "local region must be non-empty");
    XFM_ASSERT(cfg_.localBase + cfg_.localPages * pageBytes
                   <= cfg_.sfmBase
               || cfg_.sfmBase + cfg_.sfmBytes <= cfg_.localBase,
               "local and SFM regions overlap");
}

namespace
{

/** Detect zswap's same-filled pages (every word one value). */
bool
sameFilled(const Bytes &raw, std::uint64_t &fill)
{
    std::uint64_t first;
    std::memcpy(&first, raw.data(), 8);
    for (std::size_t off = 8; off < raw.size(); off += 8) {
        std::uint64_t w;
        std::memcpy(&w, raw.data() + off, 8);
        if (w != first)
            return false;
    }
    fill = first;
    return true;
}

} // namespace

void
CpuSfmBackend::cpuSwapOut(VirtPage page, SwapCallback done)
{
    XFM_ASSERT(page < cfg_.localPages, "page out of range");
    if (entries_.count(page) || same_filled_.count(page))
        fatal("swapOut: page ", page, " already in far memory");

    const std::uint64_t src = frameAddr(page);
    mem_.read(src, pageBytes, raw_scratch_);
    const Bytes &raw = raw_scratch_;

    // zswap same-filled shortcut: no compression, no pool space.
    std::uint64_t fill;
    if (cfg_.sameFilledOptimisation && sameFilled(raw, fill)) {
        same_filled_.emplace(page, fill);
        ++stats_.swapOuts;
        ++stats_.cpuSwapOuts;
        ++stats_.sameFilledPages;
        SwapOutcome outcome;
        outcome.page = page;
        outcome.usedCpu = true;
        outcome.success = true;
        outcome.compressedSize = 8;  // just the marker
        eventq().scheduleIn(1, [outcome, done, this]() mutable {
            outcome.completed = curTick();
            if (done)
                done(outcome);
        });
        return;
    }
    codec_->compressInto(raw, block_scratch_);
    const Bytes &block = block_scratch_;

    // Incompressible pages gain nothing in far memory; reject them
    // (zswap likewise refuses pages that do not shrink).
    if (block.size() >= pageBytes) {
        ++stats_.rejectedSwapOuts;
        SwapOutcome outcome;
        outcome.page = page;
        outcome.usedCpu = true;
        outcome.success = false;
        outcome.completed = curTick();
        if (done)
            done(outcome);
        return;
    }

    ZHandle h = pool_.insert(block);
    if (h == invalidZHandle && cfg_.autoCompact) {
        compact();
        h = pool_.insert(block);
    }

    SwapOutcome outcome;
    outcome.page = page;
    outcome.usedCpu = true;
    if (h == invalidZHandle) {
        ++stats_.rejectedSwapOuts;
        outcome.success = false;
        outcome.completed = curTick();
        if (done)
            done(outcome);
        return;
    }

    entries_.emplace(page, h);
    ++stats_.swapOuts;
    ++stats_.cpuSwapOuts;
    stats_.bytesCompressed += raw.size();
    const auto cost = compress::cpuCost(cfg_.algorithm);
    const double cycles =
        cost.compressCyclesPerByte * static_cast<double>(raw.size());
    stats_.cpuCycles += static_cast<std::uint64_t>(cycles);

    outcome.success = true;
    outcome.compressedSize = static_cast<std::uint32_t>(block.size());

    const Tick latency = cyclesToTicks(cycles);
    // CPU-side SFM traffic: read the cold page, write the block.
    if (mem_ctrl_) {
        mem_ctrl_->submit({src, static_cast<std::uint32_t>(pageBytes),
                           false, nullptr});
        mem_ctrl_->submit({pool_.addressOf(h),
                           static_cast<std::uint32_t>(block.size()),
                           true, nullptr});
    }
    std::uint64_t tid = 0;
    if (tracer_) {
        tid = tracer_->begin();
        tracer_->record(tid, obs::Stage::SwapOut, curTick(),
                        curTick() + latency);
        tracer_->record(tid, obs::Stage::CpuCompute, curTick(),
                        curTick() + latency);
    }
    eventq().scheduleIn(latency, [outcome, done, tid,
                                  this]() mutable {
        outcome.completed = curTick();
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Complete, curTick(),
                           obs::outcomeCpu);
        if (done)
            done(outcome);
    });
}

void
CpuSfmBackend::cpuSwapIn(VirtPage page, SwapCallback done)
{
    // Same-filled pages rematerialise with a fill, no decompression.
    auto sf = same_filled_.find(page);
    if (sf != same_filled_.end()) {
        Bytes &raw = raw_scratch_;
        raw.resize(pageBytes);
        for (std::size_t off = 0; off < raw.size(); off += 8)
            std::memcpy(raw.data() + off, &sf->second, 8);
        mem_.write(frameAddr(page), raw);
        same_filled_.erase(sf);
        ++stats_.swapIns;
        ++stats_.cpuSwapIns;
        SwapOutcome outcome;
        outcome.page = page;
        outcome.success = true;
        outcome.usedCpu = true;
        outcome.compressedSize = 8;
        eventq().scheduleIn(1, [outcome, done, this]() mutable {
            outcome.completed = curTick();
            if (done)
                done(outcome);
        });
        return;
    }

    auto it = entries_.find(page);
    if (it == entries_.end())
        fatal("swapIn: page ", page, " is not in far memory");

    const ZHandle h = it->second;
    const std::uint64_t block_addr = pool_.addressOf(h);
    pool_.fetchInto(h, block_scratch_);
    const Bytes &block = block_scratch_;
    codec_->decompressInto(block, raw_scratch_);
    const Bytes &raw = raw_scratch_;
    XFM_ASSERT(raw.size() == pageBytes,
               "decompressed page has wrong size");
    mem_.write(frameAddr(page), raw);
    pool_.erase(h);
    entries_.erase(it);

    ++stats_.swapIns;
    ++stats_.cpuSwapIns;
    stats_.bytesDecompressed += raw.size();
    const auto cost = compress::cpuCost(cfg_.algorithm);
    const double cycles =
        cost.decompressCyclesPerByte * static_cast<double>(raw.size());
    stats_.cpuCycles += static_cast<std::uint64_t>(cycles);

    if (mem_ctrl_) {
        mem_ctrl_->submit({block_addr,
                           static_cast<std::uint32_t>(block.size()),
                           false, nullptr});
        mem_ctrl_->submit({frameAddr(page),
                           static_cast<std::uint32_t>(pageBytes), true,
                           nullptr});
    }

    SwapOutcome outcome;
    outcome.page = page;
    outcome.success = true;
    outcome.usedCpu = true;
    outcome.compressedSize = static_cast<std::uint32_t>(block.size());
    const Tick latency = cyclesToTicks(cycles);
    std::uint64_t tid = 0;
    if (tracer_) {
        tid = tracer_->begin();
        tracer_->record(tid, obs::Stage::SwapIn, curTick(),
                        curTick() + latency);
        tracer_->record(tid, obs::Stage::CpuCompute, curTick(),
                        curTick() + latency);
    }
    eventq().scheduleIn(latency, [outcome, done, tid,
                                  this]() mutable {
        outcome.completed = curTick();
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Complete, curTick(),
                           obs::outcomeCpu);
        if (done)
            done(outcome);
    });
}

void
CpuSfmBackend::swapOut(VirtPage page, SwapCallback done)
{
    cpuSwapOut(page, std::move(done));
}

void
CpuSfmBackend::swapIn(VirtPage page, bool allow_offload,
                      SwapCallback done)
{
    (void)allow_offload;  // the CPU baseline has nothing to offload
    cpuSwapIn(page, std::move(done));
}

PageState
CpuSfmBackend::pageState(VirtPage page) const
{
    return entries_.count(page) || same_filled_.count(page)
        ? PageState::Far
        : PageState::Local;
}

void
CpuSfmBackend::compact()
{
    pool_.compact();
    ++stats_.compactions;
}

void
CpuSfmBackend::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "swapOuts", &stats_.swapOuts);
    r.counter(p + "swapIns", &stats_.swapIns);
    r.counter(p + "cpuSwapOuts", &stats_.cpuSwapOuts);
    r.counter(p + "cpuSwapIns", &stats_.cpuSwapIns);
    r.counter(p + "rejectedSwapOuts", &stats_.rejectedSwapOuts);
    r.counter(p + "sameFilledPages", &stats_.sameFilledPages,
              "stored as fill markers");
    r.counter(p + "bytesCompressed", &stats_.bytesCompressed);
    r.counter(p + "bytesDecompressed", &stats_.bytesDecompressed);
    r.counter(p + "cpuCycles", &stats_.cpuCycles);
    r.counter(p + "compactions", &stats_.compactions);
    r.derived(p + "pagesFar",
              [this] { return static_cast<double>(farPageCount()); });
    pool_.registerMetrics(r, name() + ".pool");
}

} // namespace sfm
} // namespace xfm
