/**
 * @file
 * SFM backend interface shared by the baseline CPU implementation
 * and the XFM-accelerated implementation.
 *
 * The backend owns SFM region management and the initiation of
 * (de)compression operations (paper Sec. 6). The SFM_Controller
 * above it selects pages; the backend moves them between the local
 * region and the compressed pool.
 *
 * The modelled virtual address space is flat: virtual page @c v
 * resides in local physical frame @c localBase + v * 4096 while
 * Local. While Far, its compressed image lives in the SFM region.
 */

#ifndef XFM_SFM_BACKEND_HH
#define XFM_SFM_BACKEND_HH

#include <cstdint>
#include <functional>

#include "common/logging.hh"
#include "common/units.hh"
#include "compress/compressor.hh"  // Bytes / ByteSpan aliases

namespace xfm
{
namespace sfm
{

/** Virtual page number in the modelled application address space. */
using VirtPage = std::uint64_t;

/** Where a virtual page currently resides. */
enum class PageState
{
    Local,  ///< uncompressed, in the local region
    Far,    ///< compressed, in the SFM region
};

/**
 * Memory tier a page occupies in the three-level hierarchy the
 * TierManager governs (SMDK-style CXL tiering generalised to the
 * paper's far-memory model):
 *
 *   NEAR  — uncompressed local DRAM (PageState::Local);
 *   XFM   — the compressed tier (CpuBackend / XfmBackend pool);
 *   DFM   — the uncompressed spill tier behind a serial link.
 *
 * Two-state backends only ever report Near/Xfm; Dfm appears once a
 * TierManager routes demotions to a spill backend.
 */
enum class Tier : std::uint8_t
{
    Near,
    Xfm,
    Dfm,
};

/** Stable lowercase identifier for stats tables and logs. */
inline const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Near: return "near";
      case Tier::Xfm: return "xfm";
      case Tier::Dfm: return "dfm";
    }
    return "unknown";
}

/** Why an unsuccessful swap was refused (typed backpressure). */
enum class RejectReason : std::uint8_t
{
    None,           ///< not rejected (or legacy untyped failure)
    Busy,           ///< an operation on the page is already in flight
    Quarantined,    ///< page poisoned by an uncorrectable ECC error
    QuotaFarPages,  ///< tenant far-page quota exceeded
    Overload,       ///< shed: service refused best-effort work
    SfmFull,        ///< far pool allocation failed
    AbuseThrottle,  ///< tenant throttled by the RFM-abuse detector
};

/** Stable lowercase identifier for stats tables and logs. */
inline const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::None: return "none";
      case RejectReason::Busy: return "busy";
      case RejectReason::Quarantined: return "quarantined";
      case RejectReason::QuotaFarPages: return "quota_far_pages";
      case RejectReason::Overload: return "overload";
      case RejectReason::SfmFull: return "sfm_full";
      case RejectReason::AbuseThrottle: return "abuse_throttle";
    }
    return "unknown";
}

/** Result of a swap-in or swap-out. */
struct SwapOutcome
{
    VirtPage page = 0;
    bool success = false;
    bool usedCpu = false;          ///< CPU performed the operation
    Tick completed = 0;
    std::uint32_t compressedSize = 0;
    /** Driver/link re-submissions this operation consumed before
     *  succeeding or falling back (fault-injection runs). */
    std::uint32_t retries = 0;
    /** Typed reason when success == false and the operation was
     *  refused (rather than attempted and failed). */
    RejectReason rejected = RejectReason::None;
    /**
     * Tier the operation moved the page to (swap-out) or from
     * (swap-in). Two-state backends leave the default; a TierManager
     * rewrites it when it routed the operation to the spill tier, so
     * accounting layers (the tenant service above all) can tell a
     * compressed-pool byte from an uncompressed spill slot.
     */
    Tier servedTier = Tier::Xfm;
};

using SwapCallback = std::function<void(const SwapOutcome &)>;

/** Backend-level statistics. */
struct BackendStats
{
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t cpuSwapOuts = 0;    ///< done by the CPU (fallback
    std::uint64_t cpuSwapIns = 0;     ///  or baseline)
    std::uint64_t rejectedSwapOuts = 0;  ///< SFM region full
    std::uint64_t bytesCompressed = 0;
    std::uint64_t bytesDecompressed = 0;
    std::uint64_t cpuCycles = 0;      ///< compression cycles burned
    std::uint64_t compactions = 0;
    std::uint64_t sameFilledPages = 0;  ///< stored as fill markers

    double
    cpuFraction() const
    {
        const auto total = swapOuts + swapIns;
        return total
            ? static_cast<double>(cpuSwapOuts + cpuSwapIns) / total
            : 0.0;
    }
};

/**
 * Abstract SFM backend.
 */
class SfmBackend
{
  public:
    virtual ~SfmBackend() = default;

    /**
     * Compress a Local page into the SFM region.
     *
     * @param page virtual page to demote; must be Local.
     * @param done invoked when the operation (including any
     *             write-back) completes or fails.
     */
    virtual void swapOut(VirtPage page, SwapCallback done) = 0;

    /**
     * Compress a Local page, optionally forbidding NMA offload.
     *
     * The multi-tenant service layer degrades over-quota tenants to
     * the CPU path this way. Backends without an offload engine
     * ignore the flag (the default forwards to the plain overload).
     *
     * @param allow_offload permit the NMA to perform the compression;
     *        when false the CPU path is used unconditionally.
     */
    virtual void
    swapOut(VirtPage page, bool allow_offload, SwapCallback done)
    {
        (void)allow_offload;
        swapOut(page, std::move(done));
    }

    /**
     * Decompress a Far page back into its local frame.
     *
     * @param page virtual page to promote; must be Far.
     * @param allow_offload permit NMA offload (prefetch path); when
     *        false the CPU decompresses, as latency-sensitive
     *        demand faults require (paper Sec. 6).
     */
    virtual void swapIn(VirtPage page, bool allow_offload,
                        SwapCallback done) = 0;

    /** Current residence of a page. */
    virtual PageState pageState(VirtPage page) const = 0;

    /** Manually compact the SFM region (xfm_compact()). */
    virtual void compact() = 0;

    /** Pages currently held compressed. */
    virtual std::uint64_t farPageCount() const = 0;

    /** Compressed bytes currently stored. */
    virtual std::uint64_t storedCompressedBytes() const = 0;

    virtual const BackendStats &stats() const = 0;

    /**
     * The application touched @p page at @p now. Plain backends
     * ignore the signal; a TierManager feeds its access-frequency
     * watermarks from it. Controllers call this on every access, so
     * the default must stay a no-op (byte-identity of non-tiered
     * runs).
     */
    virtual void
    noteAccess(VirtPage page, Tick now)
    {
        (void)page;
        (void)now;
    }

    /**
     * Raw content of @p page's local frame. Tier transitions move
     * page data between backends through this pair; only backends
     * that own frame storage implement them (the default is fatal:
     * a TierManager must never sit on top of an adapter that cannot
     * source page bytes).
     */
    virtual Bytes
    readLocalPage(VirtPage page) const
    {
        fatal("backend cannot read local frame of page ", page);
    }

    /** Overwrite @p page's local frame with @p data (a full page). */
    virtual void
    writeLocalPage(VirtPage page, ByteSpan data)
    {
        (void)data;
        fatal("backend cannot write local frame of page ", page);
    }

    /**
     * Notification that the backend forcibly reclaimed a Far page
     * back to Local outside any swap operation — e.g. a
     * quarantine-cap eviction releasing the poisoned compressed
     * image and re-establishing the page from its local frames.
     * Args: the page and the compressed bytes released. A layered
     * view (TierManager) needs this to keep its tier map coherent;
     * backends that never reclaim silently ignore it.
     */
    using ReclaimHook = std::function<void(VirtPage, std::uint32_t)>;

    /** Install @p hook (default: discarded — nothing to report). */
    virtual void
    setReclaimHook(ReclaimHook hook)
    {
        (void)hook;
    }
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_BACKEND_HH
