/**
 * @file
 * ZPool: a zsmalloc-style allocator for the compressed SFM region.
 *
 * Compressed objects are packed front-to-back into 4 KiB host pages
 * inside the SFM region of physical memory. Frees leave holes that
 * only compaction reclaims — compaction shifts live objects to one
 * end of the encapsulating OS page with memcpys, exactly the
 * behaviour zswap/zsmalloc exhibits and that the paper's
 * xfm_compact() interface exposes.
 */

#ifndef XFM_SFM_ZPOOL_HH
#define XFM_SFM_ZPOOL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "dram/phys_mem.hh"
#include "obs/registry.hh"

namespace xfm
{
namespace sfm
{

/** Opaque handle to a stored compressed object. */
using ZHandle = std::uint64_t;

constexpr ZHandle invalidZHandle = 0;

/** Allocator statistics. */
struct ZPoolStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compactionMemcpyBytes = 0;
    std::uint64_t failedAllocs = 0;
};

/**
 * Packed allocator over a physical-memory region.
 *
 * Objects keep stable handles across compaction; their physical
 * address may change (use addressOf() after any compaction).
 */
class ZPool
{
  public:
    /**
     * @param mem   backing physical memory.
     * @param base  first byte of the SFM region.
     * @param size  region size; must be a multiple of the page size.
     */
    ZPool(dram::PhysMem &mem, std::uint64_t base, std::uint64_t size);

    /**
     * Store @p data; fails (invalidZHandle) when no page has room.
     * A failed alloc is the signal for the backend to compact or
     * reject the swap-out.
     */
    ZHandle insert(ByteSpan data);

    /** Fetch a stored object's bytes. */
    Bytes fetch(ZHandle handle) const;

    /** Fetch into a reusable buffer (resized; capacity kept). */
    void fetchInto(ZHandle handle, Bytes &out) const;

    /** Remove an object, leaving a hole until compaction. */
    void erase(ZHandle handle);

    /** Current physical address of an object. */
    std::uint64_t addressOf(ZHandle handle) const;

    /** Stored (compressed) size of an object. */
    std::uint32_t sizeOf(ZHandle handle) const;

    /**
     * Compact every fragmented host page (memcpy cost is recorded
     * in the stats); returns bytes reclaimed into page tails.
     */
    std::uint64_t compact();

    /** Bytes of live objects. */
    std::uint64_t usedBytes() const { return used_; }
    /** Bytes lost to holes (freed but not compacted). */
    std::uint64_t fragmentedBytes() const { return fragmented_; }
    /** Region capacity. */
    std::uint64_t capacityBytes() const { return size_; }
    /** Free bytes assuming full compaction. */
    std::uint64_t
    freeBytes() const
    {
        return size_ - used_ - fragmented_;
    }
    std::uint64_t objectCount() const { return objects_.size(); }

    const ZPoolStats &stats() const { return stats_; }

    /** Register allocator metrics under `<prefix>.*`. */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

  private:
    struct Object
    {
        std::uint32_t page;    ///< host page index within the region
        std::uint32_t offset;  ///< byte offset within the page
        std::uint32_t size;
    };

    struct HostPage
    {
        std::vector<ZHandle> objects;  ///< in offset order
        std::uint32_t tail = 0;        ///< first unallocated byte
        std::uint32_t holeBytes = 0;
    };

    std::uint64_t pageAddr(std::uint32_t page) const;
    void compactPage(std::uint32_t page);

    dram::PhysMem &mem_;
    std::uint64_t base_;
    std::uint64_t size_;
    std::uint64_t used_ = 0;
    std::uint64_t fragmented_ = 0;
    ZHandle next_handle_ = 1;

    std::vector<HostPage> pages_;
    std::map<ZHandle, Object> objects_;
    ZPoolStats stats_;
    /** Displaced-object staging for compactPage (reused capacity). */
    Bytes compact_scratch_;
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_ZPOOL_HH
