/**
 * @file
 * Pressure-driven SFM controller in the style of Meta's senpai/TMO
 * (paper Sec. 2.1): instead of scanning page-age like Google's
 * kstaled, it watches a memory-pressure signal (the rate of demand
 * faults, standing in for PSI) and continuously adjusts how
 * aggressively it reclaims, probing downward when pressure is low
 * and backing off when faults spike.
 */

#ifndef XFM_SFM_SENPAI_HH
#define XFM_SFM_SENPAI_HH

#include <vector>

#include "common/stats.hh"
#include "obs/registry.hh"
#include "sfm/backend.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace sfm
{

/** Tuning of the pressure controller. */
struct SenpaiConfig
{
    /** Control-loop period. */
    Tick interval = milliseconds(100.0);
    /** Target demand-fault pressure (faults per second). */
    double targetFaultsPerSec = 50.0;
    /** Initial reclaim rate (pages per interval). */
    std::size_t initialReclaim = 8;
    /** Bounds on the per-interval reclaim batch. */
    std::size_t minReclaim = 0;
    std::size_t maxReclaim = 512;
    /** Multiplicative backoff when over pressure target. */
    double backoffFactor = 0.5;
    /** Additive probe when under pressure target. */
    std::size_t probeStep = 4;
};

/** Controller statistics. */
struct SenpaiStats
{
    std::uint64_t intervals = 0;
    std::uint64_t reclaimed = 0;
    std::uint64_t backoffs = 0;
    std::uint64_t probes = 0;
    std::uint64_t demandFaults = 0;
    stats::Average reclaimRate;  ///< pages per interval over time
};

/**
 * senpai-style proportional reclaim controller.
 *
 * Reclaim victims are chosen round-robin over the Local pages (the
 * kernel's LRU stands in); the pressure feedback loop is the point
 * of this controller, not victim selection.
 */
class SenpaiController : public SimObject
{
  public:
    SenpaiController(std::string name, EventQueue &eq,
                     const SenpaiConfig &cfg, SfmBackend &backend,
                     std::uint64_t num_pages);

    /** Begin the control loop. */
    void start();

    /**
     * The application touched @p page. Far pages fault and feed the
     * pressure signal.
     *
     * @retval true local hit.
     */
    bool recordAccess(VirtPage page);

    /** Current per-interval reclaim batch size. */
    std::size_t reclaimBatch() const { return reclaim_; }

    const SenpaiStats &stats() const { return stats_; }

    /** Register pressure-loop metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);

  private:
    void tick();

    SenpaiConfig cfg_;
    SfmBackend &backend_;
    std::uint64_t num_pages_;
    bool started_ = false;

    std::size_t reclaim_;
    VirtPage clock_hand_ = 0;
    std::uint64_t faults_this_interval_ = 0;
    std::vector<bool> inflight_;

    SenpaiStats stats_;
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_SENPAI_HH
