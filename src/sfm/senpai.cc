#include "senpai.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace sfm
{

SenpaiController::SenpaiController(std::string name, EventQueue &eq,
                                   const SenpaiConfig &cfg,
                                   SfmBackend &backend,
                                   std::uint64_t num_pages)
    : SimObject(std::move(name), eq), cfg_(cfg), backend_(backend),
      num_pages_(num_pages), reclaim_(cfg.initialReclaim),
      inflight_(num_pages, false)
{
    XFM_ASSERT(num_pages_ > 0, "need at least one page");
    XFM_ASSERT(cfg_.minReclaim <= cfg_.maxReclaim,
               "reclaim bounds inverted");
}

void
SenpaiController::start()
{
    if (started_)
        return;
    started_ = true;
    eventq().scheduleIn(cfg_.interval, [this] { tick(); });
}

void
SenpaiController::tick()
{
    ++stats_.intervals;

    // Pressure feedback: fault rate over the last interval.
    const double faults_per_sec =
        static_cast<double>(faults_this_interval_)
        / ticksToSec(cfg_.interval);
    faults_this_interval_ = 0;

    if (faults_per_sec > cfg_.targetFaultsPerSec) {
        // Over target: back off reclaim multiplicatively.
        reclaim_ = std::max<std::size_t>(
            cfg_.minReclaim,
            static_cast<std::size_t>(
                static_cast<double>(reclaim_) * cfg_.backoffFactor));
        ++stats_.backoffs;
    } else {
        // Under target: probe more aggressively (additive).
        reclaim_ = std::min<std::size_t>(cfg_.maxReclaim,
                                         reclaim_ + cfg_.probeStep);
        ++stats_.probes;
    }
    stats_.reclaimRate.sample(static_cast<double>(reclaim_));

    // Reclaim a batch of Local pages, clock-hand order.
    std::size_t done = 0;
    for (std::uint64_t scanned = 0;
         scanned < num_pages_ && done < reclaim_; ++scanned) {
        const VirtPage p = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % num_pages_;
        if (backend_.pageState(p) != PageState::Local
            || inflight_[p])
            continue;
        inflight_[p] = true;
        ++done;
        backend_.swapOut(p, [this, p](const SwapOutcome &) {
            inflight_[p] = false;
        });
    }
    stats_.reclaimed += done;

    eventq().scheduleIn(cfg_.interval, [this] { tick(); });
}

bool
SenpaiController::recordAccess(VirtPage page)
{
    XFM_ASSERT(page < num_pages_, "access beyond address space");
    backend_.noteAccess(page, curTick());
    if (backend_.pageState(page) == PageState::Local)
        return true;

    ++stats_.demandFaults;
    ++faults_this_interval_;
    if (!inflight_[page]) {
        inflight_[page] = true;
        backend_.swapIn(page, false, [this, page](const SwapOutcome &) {
            inflight_[page] = false;
        });
    }
    return false;
}

void
SenpaiController::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "intervals", &stats_.intervals);
    r.counter(p + "reclaimed", &stats_.reclaimed);
    r.counter(p + "backoffs", &stats_.backoffs,
              "pressure over target");
    r.counter(p + "probes", &stats_.probes,
              "pressure under target");
    r.counter(p + "demandFaults", &stats_.demandFaults);
    r.average(p + "reclaimRate", &stats_.reclaimRate,
              "pages per interval");
    r.derived(p + "reclaimBatch",
              [this] { return static_cast<double>(reclaim_); },
              "current per-interval batch");
}

} // namespace sfm
} // namespace xfm
