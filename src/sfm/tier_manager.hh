/**
 * @file
 * TierManager: the three-tier far-memory hierarchy governor.
 *
 * Generalises the two-state (local/far) swap path into the
 * NEAR / XFM / DFM lattice production far-memory stacks converge on
 * (SMDK-style CXL tiering; the paper's Sec. 3 SFM-vs-DFM trade
 * turned into a runtime policy):
 *
 *   NEAR --swapOut--> XFM     demote on coldness (controller scan)
 *   NEAR --swapOut--> DFM     demote truly-cold pages straight to
 *                             the spill tier (policy-routed)
 *   XFM  --spill---> DFM      second-level coldness or capacity
 *                             pressure (TierManager's own scan)
 *   XFM/DFM --swapIn--> NEAR  promote on fault / prefetch
 *
 * The TierManager is itself an SfmBackend: the controller above it
 * (kstaled or senpai) keeps calling swapOut/swapIn exactly as it
 * would on a two-state backend, and the manager routes each
 * operation to the primary compressed backend (CpuSfmBackend or
 * XfmBackend) or the owned DfmBackend spill tier using
 * access-frequency watermarks and per-page-group (per-tenant)
 * policies. Demotion routing and the spill scan are driven by a
 * senpai-style pressure loop: when promotions run hot the spill
 * batch backs off multiplicatively, when they run cold it probes
 * additively.
 *
 * Determinism contract (same as DESIGN.md §13): the manager lives on
 * the global event domain, every transition commits in event order,
 * and a disabled TierManager is simply never constructed — `tiering
 * = off` runs are byte-identical to pre-tiering builds.
 */

#ifndef XFM_SFM_TIER_MANAGER_HH
#define XFM_SFM_TIER_MANAGER_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/phys_mem.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "sfm/backend.hh"
#include "sfm/dfm_backend.hh"
#include "sim/sim_object.hh"

namespace xfm
{

class Config;

namespace sfm
{

/** Demotion-routing policy of a page group (SMDK "group policy"). */
enum class TierPolicy : std::uint8_t
{
    /** Watermark-routed: pages whose access count reached the
     *  promote watermark demote to XFM (cheap to bring back), the
     *  rest spill straight to DFM. */
    Auto,
    /** Always demote to the compressed tier first; only the spill
     *  scan ever moves pages to DFM. */
    XfmFirst,
    /** Demote straight to the spill tier (falls back to XFM when
     *  the statically provisioned pool is full). */
    DfmFirst,
};

const char *tierPolicyName(TierPolicy p);
/** Parse "auto" | "xfm_first" | "dfm_first" (fatal otherwise). */
TierPolicy tierPolicyFromString(const std::string &s);

/** Tuning of the tier hierarchy. */
struct TierConfig
{
    /** Master switch: off (the default) never constructs a
     *  TierManager, keeping runs byte-identical to two-state
     *  builds. */
    bool enabled = false;

    /** Default demotion-routing policy (per-group overrides win). */
    TierPolicy policy = TierPolicy::Auto;

    /** Accesses (since the page last changed tier) at which a page
     *  counts as hot: hot pages demote to XFM rather than DFM and
     *  are held back from spilling. */
    std::uint32_t promoteWatermark = 2;

    /** Spill-scan period (0 disables the maintenance scan). */
    Tick scanInterval = milliseconds(2.0);
    /** Second-level coldness: an XFM page untouched this long is a
     *  spill candidate. */
    Tick spillColdThreshold = milliseconds(40.0);
    /** Upper bound on the per-scan spill batch (the pressure loop
     *  adapts within [0, this]). */
    std::size_t maxSpillsPerScan = 16;
    /** Pages the XFM tier should hold at most (0 = uncapped);
     *  excess spills to DFM under capacity pressure. */
    std::uint64_t xfmCapacityPages = 0;

    /** Pressure target: application promotions per second above
     *  which spilling backs off. */
    double targetPromotionsPerSec = 2000.0;
    /** Multiplicative spill-batch backoff when over target. */
    double backoffFactor = 0.5;
    /** Additive spill-batch probe when under target. */
    std::size_t probeStep = 2;

    /** Spill-tier provisioning (the owned DfmBackend). */
    std::uint64_t dfmBytes = mib(8);
    Tick dfmLinkLatency = nanoseconds(300.0);
    double dfmLinkGBps = 12.0;

    /** Fault scenario forwarded to the spill link (DfmLinkDelay /
     *  DfmLinkDrop sites; disarmed by default). */
    fault::FaultPlan faults{};
    fault::RetryPolicy retry{};

    /** Parse the `tier.*` config keys (faults/retry are the
     *  caller's: the global plan is shared across backends). */
    static TierConfig fromConfig(Config &cfg);
};

/** Tier-transition statistics. */
struct TierStats
{
    std::uint64_t demotedNearToXfm = 0;
    std::uint64_t demotedNearToDfm = 0;
    std::uint64_t demotedXfmToDfm = 0;   ///< spill-scan transitions
    std::uint64_t promotedFromXfm = 0;
    std::uint64_t promotedFromDfm = 0;
    std::uint64_t spillScans = 0;
    /** Spill legs that failed (pool full, link retries exhausted,
     *  busy primary) and left the page where promotion put it. */
    std::uint64_t spillRejects = 0;
    /** Spill candidates held in XFM by the frequency watermark. */
    std::uint64_t watermarkHolds = 0;
    std::uint64_t pressureBackoffs = 0;
    std::uint64_t pressureProbes = 0;
};

/**
 * Routes swaps across the NEAR/XFM/DFM hierarchy.
 *
 * Owns the spill tier (a DfmBackend over its own PhysMem) and wraps
 * the primary compressed backend by reference. `stats()` counts only
 * application-facing operations — internal spill legs (the XFM->DFM
 * scan) never inflate the promotion rate the paper's Sec. 2.1 metric
 * is computed from.
 */
class TierManager : public SimObject, public SfmBackend
{
  public:
    /**
     * Invoked after every committed tier transition.
     *
     * @param page     the (global) virtual page that moved
     * @param from,to  the transition edge
     * @param freedCompressedBytes bytes released from the primary
     *        compressed pool by this transition (non-zero only when
     *        `from == Tier::Xfm`)
     * @param internal true for scan-driven transitions no caller
     *        callback observes (the service layer reconciles tenant
     *        accounting from exactly these)
     */
    using TransitionHook =
        std::function<void(VirtPage page, Tier from, Tier to,
                           std::uint32_t freedCompressedBytes,
                           bool internal)>;

    TierManager(std::string name, EventQueue &eq,
                const TierConfig &cfg, SfmBackend &primary,
                std::uint64_t num_pages);

    /** Begin the periodic spill scan (no-op when scanInterval 0). */
    void start();

    // SfmBackend interface -------------------------------------------
    using SfmBackend::swapOut;  // keep the 2-arg convenience overload
    void swapOut(VirtPage page, SwapCallback done) override;
    void swapOut(VirtPage page, bool allow_offload,
                 SwapCallback done) override;
    void swapIn(VirtPage page, bool allow_offload,
                SwapCallback done) override;
    PageState pageState(VirtPage page) const override;
    void compact() override { primary_.compact(); }
    std::uint64_t farPageCount() const override
    {
        return xfm_pages_ + dfm_pages_;
    }
    std::uint64_t storedCompressedBytes() const override
    {
        return primary_.storedCompressedBytes();
    }
    const BackendStats &stats() const override { return stats_; }
    void noteAccess(VirtPage page, Tick now) override;
    Bytes readLocalPage(VirtPage page) const override
    {
        // Spill legs copy (never scramble) the primary frame, so it
        // holds current content for every tier, DFM included.
        return primary_.readLocalPage(page);
    }
    void writeLocalPage(VirtPage page, ByteSpan data) override
    {
        primary_.writeLocalPage(page, data);
    }

    // Tier control plane ---------------------------------------------
    Tier tier(VirtPage page) const { return tier_[page]; }
    std::uint64_t nearPages() const
    {
        return num_pages_ - xfm_pages_ - dfm_pages_;
    }
    std::uint64_t xfmPages() const { return xfm_pages_; }
    std::uint64_t dfmPages() const { return dfm_pages_; }
    /** Current pressure-adapted spill batch. */
    std::size_t spillBatch() const { return spill_batch_; }

    /**
     * Assign pages [first, first + count) to @p group. Groups carry
     * the SMDK-style per-tenant policy override; ungrouped pages use
     * cfg.policy.
     */
    void assignGroup(VirtPage first, std::uint64_t count,
                     std::uint32_t group);
    void setGroupPolicy(std::uint32_t group, TierPolicy policy);
    /** Effective demotion policy of @p page. */
    TierPolicy pagePolicy(VirtPage page) const;

    void setTransitionHook(TransitionHook hook)
    {
        hook_ = std::move(hook);
    }

    const TierStats &tierStats() const { return tier_stats_; }
    SfmBackend &primary() { return primary_; }
    DfmBackend &spill() { return *spill_; }
    const DfmBackend &spill() const { return *spill_; }

    /** Register tier metrics (`<name()>.tier.*`) plus the spill
     *  backend's own counters. */
    void registerMetrics(obs::MetricRegistry &r);

    /** Attach a span tracer to the transition stream and the spill
     *  link (null detaches). Does NOT touch the primary backend —
     *  its owner wires it separately. */
    void setTracer(obs::Tracer *t);

  private:
    /** Commit a transition: state, counters, hook, trace. The
     *  internal XFM -> DFM spill is implemented as two physical
     *  hops through NEAR; its hops pass @p record = false so the
     *  tier stats report one logical transition, not three. */
    void commit(VirtPage page, Tier to, std::uint32_t freed,
                bool internal, bool record = true);
    /** NEAR -> DFM data leg (shared by demotion and spill). */
    void spillLeg(VirtPage page, Tier from, std::uint32_t freed,
                  bool internal, SwapCallback done);
    void demoteToXfm(VirtPage page, bool allow_offload,
                     SwapCallback done);
    /** One XFM -> DFM spill: promote internally, then spill. */
    void spillFromXfm(VirtPage page);
    void spillScan();
    /** Reject @p page's operation with Busy, immediately. */
    void rejectBusy(VirtPage page, SwapCallback &done);

    TierConfig cfg_;
    SfmBackend &primary_;
    std::uint64_t num_pages_;
    bool started_ = false;

    /** Spill-tier storage: local mirror frames, then the pool. */
    std::unique_ptr<dram::PhysMem> spill_mem_;
    std::unique_ptr<DfmBackend> spill_;

    std::vector<Tier> tier_;
    std::vector<std::uint8_t> busy_;
    std::vector<Tick> last_access_;
    /** Accesses since the page last changed tier (saturating). */
    std::vector<std::uint32_t> access_count_;
    /** Page group ids (per-tenant policy scoping); ~0 = ungrouped. */
    std::vector<std::uint32_t> group_;
    std::vector<TierPolicy> group_policy_;

    std::uint64_t xfm_pages_ = 0;
    std::uint64_t dfm_pages_ = 0;

    /** Pressure loop state. */
    std::size_t spill_batch_;
    std::uint64_t promotions_at_last_scan_ = 0;

    BackendStats stats_;       ///< application-facing operations only
    TierStats tier_stats_;
    TransitionHook hook_;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_TIER_MANAGER_HH
