/**
 * @file
 * Disaggregated far memory (DFM) backend — the paper's Sec. 3
 * comparator.
 *
 * Instead of compressing cold pages into local DRAM, a DFM keeps
 * them *uncompressed* in a remote pool behind a serial interconnect
 * (CXL/PCIe class). Swaps cost link latency plus transfer time but
 * no CPU compression cycles; capacity is statically provisioned
 * (no elasticity), which is exactly the trade-off the cost model
 * quantifies.
 */

#ifndef XFM_SFM_DFM_BACKEND_HH
#define XFM_SFM_DFM_BACKEND_HH

#include <map>

#include "dram/phys_mem.hh"
#include "fault/fault.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "sfm/backend.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace sfm
{

/** DFM interconnect and pool parameters. */
struct DfmBackendConfig
{
    std::uint64_t localBase = 0;   ///< local region base address
    std::uint64_t localPages = 0;  ///< local region size in pages
    std::uint64_t poolBase = 0;    ///< remote pool base address
    std::uint64_t poolBytes = 0;   ///< provisioned pool capacity

    /** One-way interconnect latency (CXL class: ~300 ns). */
    Tick linkLatency = nanoseconds(300.0);
    /** Link bandwidth in GB/s (x8 CXL/PCIe5 class). */
    double linkGBps = 12.0;

    /** Link fault scenario (DfmLinkDelay / DfmLinkDrop sites). The
     *  default plan is disarmed and adds no overhead. */
    fault::FaultPlan faults{};
    /** Bounded retry for dropped link transfers. */
    fault::RetryPolicy retry{};
};

/** Link-level fault statistics (zero unless a plan is armed). */
struct DfmFaultStats
{
    std::uint64_t linkDelays = 0;    ///< latency spikes injected
    std::uint64_t linkDrops = 0;     ///< transfers dropped
    std::uint64_t linkRetries = 0;   ///< re-transfers attempted
    std::uint64_t deliveryFailures = 0;  ///< retries exhausted
};

/**
 * CXL/PCIe-pool far-memory backend.
 */
class DfmBackend : public SimObject, public SfmBackend
{
  public:
    DfmBackend(std::string name, EventQueue &eq,
               const DfmBackendConfig &cfg, dram::PhysMem &mem);

    using SfmBackend::swapOut;  // keep the allow_offload overload
    void swapOut(VirtPage page, SwapCallback done) override;
    void swapIn(VirtPage page, bool allow_offload,
                SwapCallback done) override;
    PageState pageState(VirtPage page) const override;
    void compact() override {}  // nothing to compact: fixed slots
    std::uint64_t farPageCount() const override
    {
        return entries_.size();
    }
    std::uint64_t storedCompressedBytes() const override
    {
        // DFM stores pages uncompressed.
        return entries_.size() * pageBytes;
    }
    const BackendStats &stats() const override { return stats_; }

    /** Local frame address of a virtual page. */
    std::uint64_t
    frameAddr(VirtPage page) const
    {
        return cfg_.localBase + page * pageBytes;
    }

    Bytes readLocalPage(VirtPage page) const override
    {
        return mem_.read(frameAddr(page), pageBytes);
    }
    void writeLocalPage(VirtPage page, ByteSpan data) override
    {
        mem_.write(frameAddr(page), data);
    }

    /** Pool slots provisioned / free. */
    std::uint64_t poolSlots() const
    {
        return cfg_.poolBytes / pageBytes;
    }
    std::uint64_t freeSlots() const
    {
        return poolSlots() - entries_.size();
    }

    /** Time to move one page across the link. */
    Tick pageTransferTime() const;

    const DfmFaultStats &faultStats() const { return fault_stats_; }
    const fault::FaultInjector &faultInjector() const
    {
        return injector_;
    }

    /** Register backend + link-fault metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);

    /**
     * Attach a span tracer (null detaches). Each swap records a
     * SwapOut/SwapIn span whose DfmLink leg covers the modelled
     * transfer (including injected delays and re-transfers).
     */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

  private:
    /**
     * Model one page transfer across the faulty link: evaluates
     * delay spikes and drops, retrying dropped transfers with
     * exponential backoff up to the retry budget.
     *
     * @param[out] total    modelled wall time of all attempts.
     * @param[out] retries  re-transfers consumed.
     * @return true when the page was eventually delivered.
     */
    bool transferPage(Tick &total, std::uint32_t &retries);

    DfmBackendConfig cfg_;
    dram::PhysMem &mem_;
    fault::FaultInjector injector_;
    DfmFaultStats fault_stats_;
    /** Virtual page -> pool slot index. */
    std::map<VirtPage, std::uint64_t> entries_;
    std::vector<std::uint64_t> free_slots_;
    BackendStats stats_;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace sfm
} // namespace xfm

#endif // XFM_SFM_DFM_BACKEND_HH
