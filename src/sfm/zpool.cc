#include "zpool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace sfm
{

ZPool::ZPool(dram::PhysMem &mem, std::uint64_t base, std::uint64_t size)
    : mem_(mem), base_(base), size_(size),
      pages_(static_cast<std::size_t>(size / pageBytes))
{
    XFM_ASSERT(size_ > 0 && size_ % pageBytes == 0,
               "SFM region must be a positive multiple of the page "
               "size");
    XFM_ASSERT(base_ + size_ <= mem_.capacityBytes(),
               "SFM region beyond physical memory");
}

std::uint64_t
ZPool::pageAddr(std::uint32_t page) const
{
    return base_ + std::uint64_t(page) * pageBytes;
}

ZHandle
ZPool::insert(ByteSpan data)
{
    XFM_ASSERT(!data.empty() && data.size() <= pageBytes,
               "object size must be in (0, pageBytes]");
    // First-fit over page tails. Holes are not reused until
    // compaction (zsmalloc semantics approximation).
    for (std::uint32_t p = 0; p < pages_.size(); ++p) {
        HostPage &hp = pages_[p];
        if (hp.tail + data.size() > pageBytes)
            continue;
        const ZHandle handle = next_handle_++;
        Object obj{p, hp.tail, static_cast<std::uint32_t>(data.size())};
        mem_.write(pageAddr(p) + obj.offset, data);
        hp.objects.push_back(handle);
        hp.tail += obj.size;
        objects_.emplace(handle, obj);
        used_ += obj.size;
        ++stats_.allocs;
        return handle;
    }
    ++stats_.failedAllocs;
    return invalidZHandle;
}

Bytes
ZPool::fetch(ZHandle handle) const
{
    Bytes out;
    fetchInto(handle, out);
    return out;
}

void
ZPool::fetchInto(ZHandle handle, Bytes &out) const
{
    const auto it = objects_.find(handle);
    XFM_ASSERT(it != objects_.end(), "fetch: unknown handle ", handle);
    const Object &obj = it->second;
    mem_.read(pageAddr(obj.page) + obj.offset, obj.size, out);
}

void
ZPool::erase(ZHandle handle)
{
    auto it = objects_.find(handle);
    XFM_ASSERT(it != objects_.end(), "erase: unknown handle ", handle);
    const Object obj = it->second;
    objects_.erase(it);

    HostPage &hp = pages_[obj.page];
    auto &list = hp.objects;
    list.erase(std::find(list.begin(), list.end(), handle));
    used_ -= obj.size;
    ++stats_.frees;

    if (list.empty()) {
        // Whole page free again: no hole remains.
        fragmented_ -= hp.holeBytes;
        hp.holeBytes = 0;
        hp.tail = 0;
    } else if (obj.offset + obj.size == hp.tail) {
        // Tail object: shrink the tail directly.
        hp.tail = obj.offset;
    } else {
        hp.holeBytes += obj.size;
        fragmented_ += obj.size;
    }
}

std::uint64_t
ZPool::addressOf(ZHandle handle) const
{
    const auto it = objects_.find(handle);
    XFM_ASSERT(it != objects_.end(), "addressOf: unknown handle ",
               handle);
    return pageAddr(it->second.page) + it->second.offset;
}

std::uint32_t
ZPool::sizeOf(ZHandle handle) const
{
    const auto it = objects_.find(handle);
    XFM_ASSERT(it != objects_.end(), "sizeOf: unknown handle ", handle);
    return it->second.size;
}

void
ZPool::compactPage(std::uint32_t page)
{
    HostPage &hp = pages_[page];
    if (hp.holeBytes == 0)
        return;
    ++stats_.compactions;

    std::uint32_t write = 0;
    for (ZHandle h : hp.objects) {
        Object &obj = objects_.at(h);
        if (obj.offset != write) {
            mem_.read(pageAddr(page) + obj.offset, obj.size,
                      compact_scratch_);
            mem_.write(pageAddr(page) + write, compact_scratch_);
            stats_.compactionMemcpyBytes += obj.size;
            obj.offset = write;
        }
        write += obj.size;
    }
    fragmented_ -= hp.holeBytes;
    hp.holeBytes = 0;
    hp.tail = write;
}

std::uint64_t
ZPool::compact()
{
    const std::uint64_t before = fragmented_;
    for (std::uint32_t p = 0; p < pages_.size(); ++p)
        compactPage(p);
    return before - fragmented_;
}

void
ZPool::registerMetrics(obs::MetricRegistry &r,
                       const std::string &prefix)
{
    const std::string p = prefix + ".";
    r.counter(p + "allocs", &stats_.allocs);
    r.counter(p + "frees", &stats_.frees);
    r.counter(p + "compactions", &stats_.compactions);
    r.counter(p + "compactionMemcpyBytes",
              &stats_.compactionMemcpyBytes);
    r.counter(p + "failedAllocs", &stats_.failedAllocs,
              "inserts with no room");
    r.derived(p + "usedBytes",
              [this] { return static_cast<double>(used_); });
    r.derived(p + "fragmentedBytes",
              [this] { return static_cast<double>(fragmented_); },
              "holes awaiting compaction");
}

} // namespace sfm
} // namespace xfm
