/**
 * @file
 * AIFM-style remoteable containers over the SFM stack.
 *
 * The paper integrates XFM into AIFM, whose programming model gives
 * applications far-memory-backed containers instead of raw pages.
 * FarArray<T> provides that flavour here: a fixed-size array of
 * trivially-copyable elements laid out over virtual pages of a
 * System; element access transparently faults Far pages back in
 * (advancing simulated time) and optionally prefetches ahead for
 * sequential scans.
 */

#ifndef XFM_FARMEM_FAR_ARRAY_HH
#define XFM_FARMEM_FAR_ARRAY_HH

#include <cstring>
#include <type_traits>

#include "obs/registry.hh"
#include "system/system.hh"

namespace xfm
{
namespace farmem
{

/** Statistics of one container. */
struct FarArrayStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t faults = 0;       ///< accesses that found Far pages
    Tick faultWaitTicks = 0;        ///< simulated time spent waiting
};

/**
 * Fixed-size far-memory array.
 *
 * @tparam T trivially copyable element type.
 */
template <typename T>
class FarArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "far memory elements must be trivially copyable");

  public:
    /**
     * @param sys        the system owning the pages.
     * @param base_page  first virtual page of the array.
     * @param count      number of elements.
     */
    FarArray(system::System &sys, sfm::VirtPage base_page,
             std::uint64_t count)
        : sys_(sys), base_(base_page), count_(count)
    {
        XFM_ASSERT(count_ > 0, "empty far array");
    }

    std::uint64_t size() const { return count_; }

    /** Pages the array spans. */
    std::uint64_t
    pages() const
    {
        return (count_ * sizeof(T) + pageBytes - 1) / pageBytes;
    }

    /** Read element @p i (faults its page in if needed). */
    T
    read(std::uint64_t i)
    {
        ++stats_.reads;
        const auto [page, offset] = locate(i);
        ensureLocal(page);
        const Bytes raw = sys_.readPage(page);
        T value;
        std::memcpy(&value, raw.data() + offset, sizeof(T));
        return value;
    }

    /** Write element @p i (read-modify-write of its page). */
    void
    write(std::uint64_t i, const T &value)
    {
        ++stats_.writes;
        const auto [page, offset] = locate(i);
        ensureLocal(page);
        Bytes raw = sys_.readPage(page);
        std::memcpy(raw.data() + offset, &value, sizeof(T));
        sys_.writePage(page, raw);
    }

    /**
     * Hint that a sequential scan is about to pass element @p i:
     * touches the page so the controller's prefetcher promotes the
     * following pages via the NMA.
     */
    void
    prefetchHint(std::uint64_t i)
    {
        const auto [page, offset] = locate(i);
        (void)offset;
        sys_.access(page);
    }

    const FarArrayStats &stats() const { return stats_; }

    /** Register array metrics under `<prefix>.*`. */
    void
    registerMetrics(obs::MetricRegistry &r, const std::string &prefix)
    {
        const std::string p = prefix + ".";
        r.counter(p + "reads", &stats_.reads);
        r.counter(p + "writes", &stats_.writes);
        r.counter(p + "faults", &stats_.faults,
                  "accesses that found Far pages");
        r.counter(p + "faultWaitTicks", &stats_.faultWaitTicks,
                  "simulated time spent waiting");
    }

  private:
    std::pair<sfm::VirtPage, std::size_t>
    locate(std::uint64_t i) const
    {
        XFM_ASSERT(i < count_, "index ", i, " out of range");
        const std::uint64_t byte = i * sizeof(T);
        return {base_ + byte / pageBytes,
                static_cast<std::size_t>(byte % pageBytes)};
    }

    /** Touch the page; if it faults, run time until it is Local. */
    void
    ensureLocal(sfm::VirtPage page)
    {
        if (sys_.access(page))
            return;
        ++stats_.faults;
        const Tick start = sys_.curTick();
        EventQueue &eq = sys_.eventq();
        // Demand faults resolve on the CPU path within tens of us;
        // bound the wait so a stuck fault fails loudly.
        const Tick deadline = start + milliseconds(100.0);
        while (sys_.backend().pageState(page)
               != sfm::PageState::Local) {
            if (eq.now() >= deadline)
                fatal("far-array fault on page ", page,
                      " did not resolve within 100 ms");
            eq.run(eq.now() + microseconds(10.0));
        }
        stats_.faultWaitTicks += sys_.curTick() - start;
    }

    system::System &sys_;
    sfm::VirtPage base_;
    std::uint64_t count_;
    FarArrayStats stats_;
};

} // namespace farmem
} // namespace xfm

#endif // XFM_FARMEM_FAR_ARRAY_HH
