#include "spm.hh"

namespace xfm
{
namespace nma
{

bool
ScratchPad::reserve(OffloadId id, OffloadKind kind, std::uint32_t bytes,
                    std::uint32_t partition)
{
    XFM_ASSERT(id != invalidOffloadId, "invalid offload id");
    XFM_ASSERT(entries_.find(id) == entries_.end(),
               "duplicate SPM reservation for id ", id);
    if (used_ + bytes > capacity_)
        return false;
    if (injector_ && injector_->armed()) {
        if (injector_->shouldInject(fault::FaultSite::SpmReserveFail)) {
            ++injected_failures_;
            return false;
        }
        const double watermark =
            injector_->plan().spmHighWatermark
            * static_cast<double>(capacity_);
        if (static_cast<double>(used_) >= watermark
            && injector_->shouldInject(
                   fault::FaultSite::SpmHighWatermark)) {
            ++injected_failures_;
            return false;
        }
    }
    if (partition != 0) {
        const auto cap = partition_caps_.find(partition);
        if (cap != partition_caps_.end()
            && partition_used_[partition] + bytes > cap->second)
            return false;
    }
    SpmEntry e;
    e.id = id;
    e.kind = kind;
    e.tag = SpmTag::Pending;
    e.reserved = bytes;
    e.partition = partition;
    used_ += bytes;
    if (partition != 0)
        partition_used_[partition] += bytes;
    entries_.emplace(id, std::move(e));
    return true;
}

void
ScratchPad::setPartitionCap(std::uint32_t partition, std::size_t bytes)
{
    XFM_ASSERT(partition != 0, "partition 0 cannot be capped");
    if (bytes == 0)
        partition_caps_.erase(partition);
    else
        partition_caps_[partition] = bytes;
}

std::size_t
ScratchPad::partitionUsed(std::uint32_t partition) const
{
    const auto it = partition_used_.find(partition);
    return it != partition_used_.end() ? it->second : 0;
}

std::size_t
ScratchPad::partitionCap(std::uint32_t partition) const
{
    const auto it = partition_caps_.find(partition);
    return it != partition_caps_.end() ? it->second : 0;
}

void
ScratchPad::uncharge(const SpmEntry &e, std::size_t bytes)
{
    used_ -= bytes;
    if (e.partition != 0) {
        auto it = partition_used_.find(e.partition);
        XFM_ASSERT(it != partition_used_.end() && it->second >= bytes,
                   "partition accounting underflow");
        it->second -= bytes;
    }
}

void
ScratchPad::complete(OffloadId id, Bytes output, Tick when)
{
    auto it = entries_.find(id);
    XFM_ASSERT(it != entries_.end(), "complete: unknown id ", id);
    SpmEntry &e = it->second;
    XFM_ASSERT(e.tag == SpmTag::Pending, "complete: entry not pending");
    XFM_ASSERT(output.size() <= e.reserved,
               "engine output exceeds reservation: ", output.size(),
               " > ", e.reserved);
    // Trim the pessimistic reservation to the actual output size.
    uncharge(e, e.reserved - output.size());
    e.reserved = static_cast<std::uint32_t>(output.size());
    e.data = std::move(output);
    e.tag = SpmTag::Completed;
    e.stagedAt = when;
}

void
ScratchPad::setDestination(OffloadId id, std::uint64_t dst_addr)
{
    auto it = entries_.find(id);
    XFM_ASSERT(it != entries_.end(), "setDestination: unknown id ", id);
    it->second.dstAddr = dst_addr;
    it->second.writebackReady = true;
}

const SpmEntry &
ScratchPad::entry(OffloadId id) const
{
    auto it = entries_.find(id);
    XFM_ASSERT(it != entries_.end(), "entry: unknown id ", id);
    return it->second;
}

bool
ScratchPad::popWriteback(SpmEntry &out)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.tag == SpmTag::Completed
            && it->second.writebackReady) {
            out = std::move(it->second);
            uncharge(out, out.reserved);
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<OffloadId>
ScratchPad::writebackIds() const
{
    std::vector<OffloadId> ids;
    for (const auto &[id, e] : entries_)
        if (e.tag == SpmTag::Completed && e.writebackReady)
            ids.push_back(id);
    return ids;
}

SpmEntry
ScratchPad::take(OffloadId id)
{
    auto it = entries_.find(id);
    XFM_ASSERT(it != entries_.end(), "take: unknown id ", id);
    SpmEntry out = std::move(it->second);
    uncharge(out, out.reserved);
    entries_.erase(it);
    return out;
}

void
ScratchPad::release(OffloadId id)
{
    auto it = entries_.find(id);
    XFM_ASSERT(it != entries_.end(), "release: unknown id ", id);
    uncharge(it->second, it->second.reserved);
    entries_.erase(it);
}

} // namespace nma
} // namespace xfm
