#include "ring.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace nma
{

// ------------------------------------------------- SubmissionQueue

SubmissionQueue::SubmissionQueue(std::uint32_t depth,
                                 RingStats &stats)
    : depth_(depth), stats_(stats), slab_(depth)
{
    XFM_ASSERT(depth >= 1, "submission queue needs at least 1 slot");
    XFM_ASSERT(depth <= maxCommandSlots,
               "submission queue deeper than the tag slot field");
    free_.reserve(depth);
    for (std::uint32_t s = depth; s > 0; --s) {
        slab_[s - 1].slot = s - 1;
        free_.push_back(s - 1);  // back() is the lowest index
    }
}

CommandTag
SubmissionQueue::push(const OffloadRequest &req, Tick now)
{
    if (free_.empty()) {
        ++stats_.sqFullRejects;
        return 0;
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    CommandDescriptor &d = slab_[slot];
    const CommandTag tag = makeTag(d.generation, slot);
    d.req = req;
    d.req.id = tag;
    d.enqueued = now;
    d.doorbelled = 0;
    d.inUse = true;
    d.visible = false;
    d.consumed = false;
    staged_.push_back(slot);
    ++tail_;
    ++stats_.sqEnqueues;
    return tag;
}

void
SubmissionQueue::ringDoorbell(Tick now)
{
    ++stats_.doorbells;
    while (!staged_.empty()) {
        const std::uint32_t slot = staged_.front();
        staged_.pop_front();
        slab_[slot].visible = true;
        slab_[slot].doorbelled = now;
        pending_.push_back(slot);
    }
}

bool
SubmissionQueue::consume(CommandDescriptor &out)
{
    if (pending_.empty())
        return false;
    const std::uint32_t slot = pending_.front();
    pending_.pop_front();
    slab_[slot].consumed = true;
    ++stats_.consumed;
    out = slab_[slot];
    return true;
}

bool
SubmissionQueue::validTag(CommandTag tag) const
{
    const std::uint32_t slot = slotOf(tag);
    if (slot >= depth_)
        return false;
    const CommandDescriptor &d = slab_[slot];
    return d.inUse && d.generation == generationOf(tag);
}

bool
SubmissionQueue::retire(CommandTag tag)
{
    if (!validTag(tag))
        return false;
    const std::uint32_t slot = slotOf(tag);
    CommandDescriptor &d = slab_[slot];
    d.inUse = false;
    d.visible = false;
    d.consumed = false;
    ++d.generation;
    // Keep the free list sorted with the lowest slot at the back so
    // allocation order (and thus every tag ever issued) is a pure
    // function of the submission sequence.
    free_.insert(std::lower_bound(free_.begin(), free_.end(), slot,
                                  std::greater<std::uint32_t>()),
                 slot);
    return true;
}

bool
SubmissionQueue::cancel(CommandTag tag)
{
    if (!validTag(tag))
        return false;
    const std::uint32_t slot = slotOf(tag);
    if (slab_[slot].consumed)
        return false;  // device already owns it
    std::erase(staged_, slot);
    std::erase(pending_, slot);
    retire(tag);
    return true;
}

bool
SubmissionQueue::withdraw(CommandTag tag)
{
    if (!validTag(tag))
        return false;
    const std::uint32_t slot = slotOf(tag);
    if (slab_[slot].consumed)
        return false;  // device already owns it
    std::erase(staged_, slot);
    std::erase(pending_, slot);
    slab_[slot].consumed = true;  // no longer eligible for consume()
    return true;
}

std::vector<CommandTag>
SubmissionQueue::strandedSince(Tick now, Tick limit) const
{
    std::vector<CommandTag> out;
    for (const CommandDescriptor &d : slab_) {
        if (d.inUse && !d.consumed && now > d.enqueued + limit)
            out.push_back(makeTag(d.generation, d.slot));
    }
    return out;
}

// ------------------------------------------------- CompletionQueue

CompletionQueue::CompletionQueue(std::uint32_t depth,
                                 RingStats &stats)
    : stats_(stats), ring_(depth)
{
    XFM_ASSERT(depth >= 2, "completion ring needs >= 2 entries");
    // Freshly initialised entries carry phase = false while both
    // sides expect true, so an empty ring can never be reaped.
}

bool
CompletionQueue::post(CompletionRecord rec, Tick now)
{
    if (pending_ == ring_.size())
        return false;
    rec.tick = now;
    rec.phase = dev_phase_;
    ring_[tail_] = rec;
    if (++tail_ == ring_.size()) {
        tail_ = 0;
        dev_phase_ = !dev_phase_;
        ++stats_.phaseFlips;
    }
    ++pending_;
    ++stats_.cqPosts;
    return true;
}

bool
CompletionQueue::reap(CompletionRecord &out)
{
    if (ring_[head_].phase != drv_phase_)
        return false;  // no new record at the head position
    out = ring_[head_];
    if (++head_ == ring_.size()) {
        head_ = 0;
        drv_phase_ = !drv_phase_;
    }
    ++head_count_;
    XFM_ASSERT(pending_ > 0, "reaped a record the device never posted");
    --pending_;
    ++stats_.reaped;
    return true;
}

// ----------------------------------------------------- CommandRing

CommandRing::CommandRing(std::uint32_t sq_depth)
    : sq_(sq_depth, stats_), cq_(2 * sq_depth + 2, stats_),
      occupancy_(0.0, static_cast<double>(sq_depth) + 1.0,
                 sq_depth + 1)
{
}

void
CommandRing::registerMetrics(obs::MetricRegistry &r,
                             const std::string &prefix)
{
    const std::string p = prefix + ".ring.";
    r.counter(p + "sqEnqueues", &stats_.sqEnqueues,
              "descriptors written into the submission queue");
    r.counter(p + "sqFullRejects", &stats_.sqFullRejects,
              "submissions refused by full-SQ backpressure");
    r.counter(p + "doorbells", &stats_.doorbells,
              "SQ tail doorbell MMIO writes (batched)");
    r.counter(p + "consumed", &stats_.consumed);
    r.counter(p + "cqPosts", &stats_.cqPosts);
    r.counter(p + "reapBatches", &stats_.reapBatches,
              "coalesced completion reap rounds");
    r.counter(p + "reaped", &stats_.reaped);
    r.counter(p + "staleRejected", &stats_.staleRejected,
              "completion records with a stale generation tag");
    r.counter(p + "phaseFlips", &stats_.phaseFlips,
              "completion-ring wraps");
    r.counter(p + "phaseCorruptions", &stats_.phaseCorruptions,
              "injected phase-bit misreads (reap round skipped)");
    r.counter(p + "watchdogCancels", &stats_.watchdogCancels,
              "stranded SQ entries cancelled by the watchdog");
    r.derived(p + "sqOccupancy",
              [this] {
                  return static_cast<double>(sq_.inFlight());
              },
              "submission-queue slots owned by live commands");
    r.derived(p + "cqPending",
              [this] { return static_cast<double>(cq_.pending()); });
    r.histogram(p + "occupancy", &occupancy_,
                "SQ occupancy sampled at each enqueue");
}

} // namespace nma
} // namespace xfm
