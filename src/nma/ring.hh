/**
 * @file
 * Async NMA command rings: per-DIMM submission/completion queue
 * pairs (NVMe-style) over slab-allocated command descriptors.
 *
 * Submission side: the driver writes descriptors into free slab
 * slots, then makes a batch of them device-visible with ONE MMIO
 * write of the SQ tail doorbell per tREFI batch. The device
 * consumes visible descriptors in doorbell order at the next
 * refresh window. A slot stays owned by its command until the
 * driver reaps the command's final completion record, so full-SQ
 * backpressure is exact: no descriptor reuse while in flight.
 *
 * Completion side: the device posts records into a ring whose
 * validity is carried by a phase bit that flips on every wrap
 * (NVMe CQ protocol) — the driver never reads a tail pointer, it
 * reaps records whose phase matches its expectation, in post
 * order, and acknowledges a whole batch with one CQ head doorbell
 * write. Completions may be posted out of order with respect to
 * submission; the driver dispatches them in post order, which the
 * event queue makes deterministic, so metrics and traces stay
 * byte-identical across runs.
 */

#ifndef XFM_NMA_RING_HH
#define XFM_NMA_RING_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "nma/command.hh"
#include "obs/registry.hh"

namespace xfm
{
namespace nma
{

/** Ring-layer statistics (registered only when a ring exists). */
struct RingStats
{
    std::uint64_t sqEnqueues = 0;     ///< descriptors written
    std::uint64_t sqFullRejects = 0;  ///< push() found no free slot
    std::uint64_t doorbells = 0;      ///< SQ tail MMIO writes
    std::uint64_t consumed = 0;       ///< descriptors pulled by device
    std::uint64_t cqPosts = 0;        ///< completion records posted
    std::uint64_t reapBatches = 0;    ///< driver reap rounds
    std::uint64_t reaped = 0;         ///< records consumed
    std::uint64_t staleRejected = 0;  ///< stale generation tags seen
    std::uint64_t phaseFlips = 0;     ///< CQ wraps (phase inversions)
    std::uint64_t phaseCorruptions = 0;  ///< injected misread reaps
    std::uint64_t watchdogCancels = 0;   ///< stranded SQ entries killed
};

/**
 * Slab-backed submission queue.
 *
 * Free slots are handed out lowest-index first; the pending FIFO
 * preserves doorbell order for the device's consume side.
 */
class SubmissionQueue
{
  public:
    SubmissionQueue(std::uint32_t depth, RingStats &stats);

    std::uint32_t depth() const { return depth_; }
    bool full() const { return free_.empty(); }
    /** Slots currently owned by live commands. */
    std::uint32_t
    inFlight() const
    {
        return depth_ - static_cast<std::uint32_t>(free_.size());
    }
    /** Descriptors written but not yet covered by a doorbell. */
    std::uint32_t
    stagedCount() const
    {
        return static_cast<std::uint32_t>(staged_.size());
    }
    /** Free-running tail index (doorbell register payload). */
    std::uint64_t tailIndex() const { return tail_; }

    /**
     * Write a descriptor into a free slot (not yet device-visible).
     * Assigns req.id = the slot's generation tag.
     * @return the tag, or 0 when the SQ is full (backpressure).
     */
    CommandTag push(const OffloadRequest &req, Tick now);

    /** Deliver the tail doorbell: staged entries become visible. */
    void ringDoorbell(Tick now);

    /** Device side: pull the oldest visible unconsumed descriptor. */
    bool consume(CommandDescriptor &out);

    /** True while @p tag names the live generation of its slot. */
    bool validTag(CommandTag tag) const;

    /**
     * Return the slot to the free list and bump its generation, so
     * later completion records carrying this tag read as stale.
     * @retval false the tag was already stale (no-op).
     */
    bool retire(CommandTag tag);

    /**
     * Cancel a not-yet-consumed command (abort path): drop it from
     * the staged/pending queues and retire the slot.
     * @retval false the descriptor was already consumed (or stale).
     */
    bool cancel(CommandTag tag);

    /**
     * Pull a not-yet-consumed command out of the staged/pending
     * queues WITHOUT retiring its slot (watchdog drop path: the
     * device still posts a Drop record for the tag, and the slot is
     * reclaimed when the driver reaps it).
     * @retval false the descriptor was already consumed (or stale).
     */
    bool withdraw(CommandTag tag);

    /**
     * Tags of commands pushed but still unconsumed after @p limit
     * ticks (a lost doorbell whose retries ran out strands them):
     * the watchdog cancels these and reports them dropped.
     */
    std::vector<CommandTag> strandedSince(Tick now, Tick limit) const;

    const CommandDescriptor &descriptor(std::uint32_t slot) const
    {
        return slab_[slot];
    }

  private:
    std::uint32_t depth_;
    RingStats &stats_;
    std::vector<CommandDescriptor> slab_;
    std::vector<std::uint32_t> free_;     ///< sorted, lowest first
    std::deque<std::uint32_t> staged_;    ///< written, no doorbell yet
    std::deque<std::uint32_t> pending_;   ///< visible, unconsumed
    std::uint64_t tail_ = 0;              ///< free-running tail index
};

/**
 * Phase-bit completion ring.
 *
 * The device writes records with its current phase bit and flips it
 * after each wrap; the driver reaps entries whose phase matches its
 * own expectation and flips in lockstep. An entry left over from
 * the previous lap carries the old phase and is never misread.
 */
class CompletionQueue
{
  public:
    CompletionQueue(std::uint32_t depth, RingStats &stats);

    std::uint32_t depth() const
    {
        return static_cast<std::uint32_t>(ring_.size());
    }
    std::uint32_t pending() const { return pending_; }
    /** Free-running head index (head doorbell payload). */
    std::uint64_t headIndex() const { return head_count_; }

    /** Device side: post a record. @retval false ring full (bug —
     *  the CQ is sized so this cannot happen in normal operation). */
    bool post(CompletionRecord rec, Tick now);

    /** Driver side: reap the oldest record whose phase matches. */
    bool reap(CompletionRecord &out);

  private:
    RingStats &stats_;
    std::vector<CompletionRecord> ring_;
    std::uint32_t head_ = 0;  ///< driver read position
    std::uint32_t tail_ = 0;  ///< device write position
    bool dev_phase_ = true;   ///< phase of the device's next post
    bool drv_phase_ = true;   ///< phase the driver expects next
    std::uint32_t pending_ = 0;
    std::uint64_t head_count_ = 0;
};

/**
 * One DIMM's queue pair plus its shared stats and occupancy
 * telemetry. The CQ is sized at 2 * sqDepth + 2: a command posts at
 * most two records (Complete then Writeback/Drop), so the ring can
 * never overflow even if the driver defers reaping indefinitely.
 */
class CommandRing
{
  public:
    explicit CommandRing(std::uint32_t sq_depth);

    SubmissionQueue &sq() { return sq_; }
    CompletionQueue &cq() { return cq_; }
    RingStats &stats() { return stats_; }
    const RingStats &stats() const { return stats_; }

    /** Sample the SQ occupancy histogram (at enqueue time). */
    void
    sampleOccupancy()
    {
        occupancy_.sample(static_cast<double>(sq_.inFlight()));
    }

    /** Register ring counters/gauges under `<prefix>.ring.*`. */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

  private:
    RingStats stats_;
    SubmissionQueue sq_;
    CompletionQueue cq_;
    stats::Histogram occupancy_;
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_RING_HH
