/**
 * @file
 * MMIO register file and Compress_Request_Queue of an XFM DIMM.
 *
 * The driver talks to the DIMM exclusively through these registers;
 * every access is counted so tests can verify the backend's lazy
 * occupancy accounting really avoids synchronisation in the common
 * case (paper Sec. 6).
 */

#ifndef XFM_NMA_MMIO_HH
#define XFM_NMA_MMIO_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/stats.hh"
#include "nma/offload.hh"

namespace xfm
{
namespace nma
{

/** Architectural register indices. */
enum class Reg : std::uint32_t
{
    SpCapacity,      ///< free SPM bytes (read-only)
    SfmRegionBase,   ///< physical base of the SFM region
    SfmRegionSize,   ///< SFM region size in bytes
    QueueDepth,      ///< occupied Compress_Request_Queue slots (RO)
    Control,         ///< enable bit etc.
    SqTailDoorbell,  ///< ring mode: SQ tail (batched doorbell)
    CqHeadDoorbell,  ///< ring mode: CQ head (reap acknowledgement)
};

/**
 * Register file with access accounting.
 *
 * Read-only registers are backed by callbacks into device state so
 * an MMIO read always observes the live value.
 */
class RegisterFile
{
  public:
    using ReadHook = std::function<std::uint64_t()>;
    using WriteHook = std::function<void(std::uint64_t)>;

    /** Install the live-value provider for a read-only register. */
    void bindReadOnly(Reg reg, ReadHook hook);

    /** Install a device-side reaction to writes (doorbells). */
    void bindWrite(Reg reg, WriteHook hook);

    /** MMIO read (counted). */
    std::uint64_t read(Reg reg);

    /** MMIO write (counted); read-only registers reject writes. */
    void write(Reg reg, std::uint64_t value);

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }

  private:
    struct Slot
    {
        std::uint64_t value = 0;
        ReadHook hook;        ///< non-null => read-only
        WriteHook writeHook;  ///< non-null => doorbell side effect
    };

    Slot &slot(Reg reg);

    std::array<Slot, 7> slots_;
    stats::Counter reads_;
    stats::Counter writes_;
};

/**
 * Bounded descriptor queue fed by MMIO doorbell writes.
 */
class CompressRequestQueue
{
  public:
    explicit CompressRequestQueue(std::size_t depth) : depth_(depth) {}

    std::size_t depth() const { return depth_; }
    std::size_t size() const { return q_.size(); }
    bool full() const { return q_.size() >= depth_; }
    bool empty() const { return q_.empty(); }

    /** Push a descriptor; returns false when the queue is full. */
    bool
    push(const OffloadRequest &req)
    {
        if (full())
            return false;
        q_.push_back(req);
        return true;
    }

    /** Oldest descriptor; queue must not be empty. */
    const OffloadRequest &front() const { return q_.front(); }

    /** Remove a queued descriptor by id; false if not present. */
    bool
    removeById(std::uint64_t id)
    {
        for (auto it = q_.begin(); it != q_.end(); ++it) {
            if (it->id == id) {
                q_.erase(it);
                return true;
            }
        }
        return false;
    }

    /** Pop the oldest descriptor; queue must not be empty. */
    OffloadRequest
    pop()
    {
        OffloadRequest r = q_.front();
        q_.pop_front();
        return r;
    }

  private:
    std::size_t depth_;
    std::deque<OffloadRequest> q_;
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_MMIO_HH
