/**
 * @file
 * Offload request/response types shared by the NMA device, the XFM
 * driver, and the XFM backend.
 */

#ifndef XFM_NMA_OFFLOAD_HH
#define XFM_NMA_OFFLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/units.hh"
#include "compress/compressor.hh"

namespace xfm
{
namespace nma
{

/** Kind of (de)compression offload. */
enum class OffloadKind
{
    Compress,
    Decompress,
};

/** How an NMA DRAM access was scheduled within a refresh window. */
enum class AccessClass
{
    Conditional,  ///< row was being refreshed; piggybacked
    Random,       ///< SALP parallel access to another subarray
};

/** Unique offload identifier assigned by the device. */
using OffloadId = std::uint64_t;

constexpr OffloadId invalidOffloadId = 0;

/** Why an accepted offload was abandoned (drop callback detail). */
enum class DropReason : std::uint8_t
{
    Deadline,     ///< request deadline passed before execution
    EngineStall,  ///< injected engine stall/timeout mid-window
    Watchdog,     ///< stuck past the watchdog deadline
};

/**
 * A descriptor pushed into the Compress_Request_Queue.
 *
 * For Compress, @p srcAddr names an uncompressed page shard in this
 * device's rank and @p size its length; the write-back destination
 * is supplied later via commitWriteback() once the backend has
 * allocated space for the now-known compressed size.
 *
 * For Decompress, @p srcAddr names the compressed entry, @p size its
 * compressed length, and @p dstAddr the destination page frame
 * (known up front).
 */
struct OffloadRequest
{
    /** Assigned by the device at submit(); 0 until then. */
    std::uint64_t id = 0;

    OffloadKind kind = OffloadKind::Compress;
    std::uint64_t srcAddr = 0;
    std::uint32_t size = 0;
    std::uint64_t dstAddr = 0;     ///< decompress only
    std::uint32_t rawSize = 0;     ///< decompress: expected output
    Tick deadline = maxTick;       ///< fall back if not started by then
    /** SPM partition charged for the staged output (0 = uncapped). */
    std::uint32_t partition = 0;
    /** obs::Tracer request id this offload belongs to (0 = untraced). */
    std::uint64_t traceId = 0;
    /** Stamped by the device at submit(); anchors the queue span. */
    Tick submitTick = 0;
    /**
     * Preset dictionary staged with the descriptor (DESIGN.md §16);
     * nullptr/empty disables dict mode. Compress offloads emit
     * dict-referencing (0xD2) blocks with it; decompress offloads
     * need it back to decode those blocks — the driver recovers it
     * from the page's once-per-slot packed copy and stages it into
     * the engine's SPM as part of the descriptor.
     */
    std::shared_ptr<const Bytes> dict;
};

/** Completion record delivered to the driver. */
struct OffloadCompletion
{
    OffloadId id = invalidOffloadId;
    OffloadKind kind = OffloadKind::Compress;
    std::uint32_t outputSize = 0;   ///< compressed/decompressed bytes
    Tick finished = 0;              ///< compute done (before writeback)
};

/** Callback invoked when engine work finishes (compress path). */
using CompletionCallback = std::function<void(const OffloadCompletion &)>;

/** Callback invoked when the write-back has been committed to DRAM. */
using WritebackCallback = std::function<void(OffloadId, Tick)>;

/** Callback invoked when an accepted offload is abandoned. */
using DropCallback = std::function<void(OffloadId, DropReason)>;

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_OFFLOAD_HH
