#include "lockout_device.hh"

#include "common/logging.hh"

namespace xfm
{
namespace nma
{

HostLockoutDevice::HostLockoutDevice(std::string name, EventQueue &eq,
                                     const LockoutDeviceConfig &cfg,
                                     dram::PhysMem &mem,
                                     dram::MemCtrl &ctrl)
    : SimObject(std::move(name), eq), cfg_(cfg), mem_(mem),
      ctrl_(ctrl), engine_(cfg.algorithm, cfg.engine)
{}

Tick
HostLockoutDevice::transferTime(std::size_t bytes) const
{
    const double ns =
        static_cast<double>(bytes) / cfg_.transferGBps;
    return nanoseconds(ns);
}

void
HostLockoutDevice::offload(const OffloadRequest &req,
                           CompletionCallback done)
{
    XFM_ASSERT(req.size > 0, "offload with zero size");
    const OffloadId id = next_id_++;
    ++stats_.offloads;

    // Do the data work now; timing determines the lock duration.
    Bytes data = mem_.read(req.srcAddr, req.size);
    Bytes output;
    Tick compute;
    if (req.kind == OffloadKind::Compress) {
        std::tie(output, compute) = engine_.compress(data);
    } else {
        std::tie(output, compute) =
            engine_.decompress(data, req.rawSize);
    }
    const Tick duration = transferTime(req.size) + compute
        + transferTime(output.size());
    stats_.bytesMoved += req.size + output.size();

    // Serialise offloads on the single engine, then lock the rank
    // for the whole operation: the host cannot touch it meanwhile.
    const Tick start = std::max(curTick(), busy_until_);
    const Tick end = start + duration;
    busy_until_ = end;
    stats_.rankLockedTicks += end - start;
    ctrl_.lockRank(cfg_.channel, cfg_.rank, end);

    const std::uint64_t dst = req.dstAddr;
    const auto out_size = static_cast<std::uint32_t>(output.size());
    const OffloadKind kind = req.kind;
    eventq().schedule(end, [this, id, kind, dst, out_size, done,
                            out = std::move(output)]() mutable {
        mem_.write(dst, out);
        if (done)
            done({id, kind, out_size, curTick()});
    }, EventQueue::defaultPriority, eventDomain());
}

} // namespace nma
} // namespace xfm
