/**
 * @file
 * The NMA's (de)compression engine.
 *
 * Functionally it runs a real codec over real bytes; its timing is
 * a throughput model matching the paper's accelerator (14.8 GB/s
 * compression, 17.2 GB/s decompression on the AxDIMM prototype's
 * customised open-source engine). An alternative FPGA profile
 * models the 1.4/1.7 GB/s Deflate soft-core from Table 2's
 * discussion.
 */

#ifndef XFM_NMA_ENGINE_HH
#define XFM_NMA_ENGINE_HH

#include <memory>
#include <utility>

#include "common/stats.hh"
#include "common/worker_pool.hh"
#include "compress/arena.hh"
#include "compress/compressor.hh"
#include "nma/offload.hh"

namespace xfm
{
namespace nma
{

/**
 * Handle to an engine (de)compression whose codec work may still be
 * running on a WorkerPool thread. The simulated latency is known at
 * submission; only the bytes arrive later. take() blocks until the
 * codec finished (a no-op for inline jobs) and moves the output out.
 *
 * The shared state owns the staged input lease, so the source bytes
 * stay alive for a worker even after the caller moved on; the lease
 * returns to its (mutex-protected) arena when the job is dropped.
 */
class EngineJob
{
  public:
    EngineJob() = default;

    /** True once a job was issued into this handle. */
    explicit operator bool() const { return state_ != nullptr; }

    /** Wait for the codec and move the output out (once). */
    Bytes
    take()
    {
        auto state = std::move(state_);
        if (state->task)
            state->task->wait();
        return std::move(state->out);
    }

  private:
    friend class CompressionEngine;

    struct State
    {
        Bytes out;
        compress::ScratchArena::Lease input;
        WorkerPool::TaskPtr task;
    };

    std::shared_ptr<State> state_;
};

/** Engine timing profile. */
struct EngineProfile
{
    double compressGBps = 14.8;    ///< AxDIMM custom engine
    double decompressGBps = 17.2;

    /**
     * When positive, the engine runs in *size-model* mode: instead
     * of executing a real codec it emits an output of
     * input/modeledRatio bytes (with deterministic jitter). Used by
     * timing/queueing experiments (Fig. 12) where data content is
     * irrelevant and real compression would dominate host runtime.
     * Outputs do not round-trip in this mode.
     */
    double modeledRatio = 0.0;

    /** FPGA soft-core Deflate profile (Sec. 8, Table 2). */
    static EngineProfile
    fpgaSoftCore()
    {
        return {1.4, 1.7};
    }
};

/**
 * Compression engine: real codec + throughput timing.
 */
class CompressionEngine
{
  public:
    CompressionEngine(compress::Algorithm algo,
                      EngineProfile profile = EngineProfile{});

    /**
     * Compress and report (output, compute latency).
     *
     * @param dict optional preset dictionary (DESIGN.md §16): when
     *        non-null and non-empty the output is a dict-referencing
     *        container (compress::encodeShardRef) unless the plain
     *        block is smaller — the dictionary itself is stored once
     *        per page by the backend, not replicated into shards.
     *        Ignored in size-model mode.
     */
    std::pair<Bytes, Tick>
    compress(ByteSpan input,
             std::shared_ptr<const Bytes> dict = nullptr);

    /**
     * Decompress and report (output, compute latency).
     *
     * @param expected_raw expected decompressed size; required by
     *        size-model mode, ignored (0 allowed) otherwise.
     * @param dict preset dictionary staged by the driver for 0xD2
     *        blocks (DESIGN.md §16); may be null for plain/0xD1.
     */
    std::pair<Bytes, Tick>
    decompress(ByteSpan block, std::uint32_t expected_raw = 0,
               std::shared_ptr<const Bytes> dict = nullptr);

    /**
     * Deferred compress: the simulated latency (a function of the
     * input size only) returns immediately; the codec itself runs on
     * the worker pool when one is attached and parallel, inline
     * otherwise. Size-model mode always runs inline so the modeled
     * jitter counter advances in submission order. Byte counters are
     * charged at submission either way, so metrics are identical for
     * any worker count.
     *
     * @param input staged input bytes; the job owns the lease.
     * @param dict  optional preset dictionary; see compress(). The
     *        shared_ptr keeps it alive for worker-pool execution.
     */
    std::pair<EngineJob, Tick>
    compressDeferred(compress::ScratchArena::Lease input,
                     std::shared_ptr<const Bytes> dict = nullptr);

    /**
     * Deferred decompress; see compressDeferred(). Requires the
     * expected raw size (which the simulated latency and the byte
     * counter are charged from — equal to the actual output for any
     * valid block); pass 0 to force inline execution with counters
     * charged from the actual output. The optional dictionary is
     * required whenever the staged block is a 0xD2 container.
     */
    std::pair<EngineJob, Tick>
    decompressDeferred(compress::ScratchArena::Lease input,
                       std::uint32_t expected_raw,
                       std::shared_ptr<const Bytes> dict = nullptr);

    /** Attach (or detach, nullptr) the fan-out pool. */
    void setWorkerPool(WorkerPool *pool) { pool_ = pool; }

    /**
     * Worst-case compressed size for an input, used for the SPM's
     * pessimistic reservation (stored-block fallback bound).
     */
    static std::uint32_t
    worstCaseCompressedSize(std::uint32_t input_size)
    {
        return input_size + 16;
    }

    std::uint64_t bytesCompressed() const
    {
        return bytes_compressed_.value();
    }
    std::uint64_t bytesDecompressed() const
    {
        return bytes_decompressed_.value();
    }

    const EngineProfile &profile() const { return profile_; }
    compress::Algorithm algorithm() const { return codec_->algorithm(); }

  private:
    Tick durationFor(std::size_t bytes, double gbps) const;
    std::uint32_t modeledSize(std::size_t input_size);

    std::shared_ptr<compress::Compressor> codec_;
    EngineProfile profile_;
    WorkerPool *pool_ = nullptr;
    /**
     * Jitter counter for size-model mode. Per-engine state (not a
     * process-wide static): two engines — or two back-to-back runs
     * in one process — must produce identical modeled sizes from
     * identical inputs, or same-seed runs diverge.
     */
    std::uint64_t model_counter_ = 0;
    stats::Counter bytes_compressed_;
    stats::Counter bytes_decompressed_;
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_ENGINE_HH
