/**
 * @file
 * XfmDevice: the near-memory accelerator on one DRAM rank.
 *
 * Implements the paper's core mechanism: all NMA accesses to DRAM
 * are batched during each tREFI interval and executed inside the
 * tRFC all-bank refresh window, invisible to the CPU memory
 * controller. Accesses whose target row is being refreshed in the
 * window ride along as *conditional* accesses (the row is already
 * activated); a bounded number of *random* accesses reach other
 * rows through SALP-style parallel subarray access.
 *
 * Capacity pressure propagates exactly as in Fig. 10/12: engine
 * output staged in the SPM -> SPM full -> Compress_Request_Queue
 * backs up -> submit() fails -> the driver falls back to the CPU.
 */

#ifndef XFM_NMA_XFM_DEVICE_HH
#define XFM_NMA_XFM_DEVICE_HH

#include <deque>
#include <functional>
#include <memory>
#include <set>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "health/health.hh"
#include "dram/bank.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/engine.hh"
#include "nma/mmio.hh"
#include "nma/offload.hh"
#include "nma/ring.hh"
#include "nma/spm.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace nma
{

/** Static configuration of one XFM DIMM device. */
struct XfmDeviceConfig
{
    std::uint32_t channel = 0;  ///< channel this DIMM sits on
    std::uint32_t rank = 0;     ///< rank within the channel

    std::size_t spmBytes = mib(2);          ///< prototype SPM size
    std::size_t queueDepth = 64;            ///< request queue slots
    /**
     * Total accesses per tRFC window. 0 = derive from the device's
     * timing (dram::maxAccessesPerTrfc: 2/3/4 for 8/16/32 Gb).
     */
    std::uint32_t maxAccessesPerWindow = 0;
    std::uint32_t maxRandomPerWindow = 1;   ///< SALP random accesses

    /**
     * Extra random slots borrowed from Target-Row-Refresh cycles
     * (Sec. 5): commodity DIMMs reserve refresh bandwidth for
     * Rowhammer victim rows, but TRR rarely triggers in practice
     * [TRRespass], so XFM can opportunistically reuse the slack.
     */
    std::uint32_t trrRandomSlots = 0;
    /** Probability a TRR cycle is unused in a given window. */
    double trrUnusedProbability = 0.95;
    /** RNG seed for the TRR-availability draw. */
    std::uint64_t seed = 1;

    compress::Algorithm algorithm = compress::Algorithm::ZstdLike;
    EngineProfile engine{};

    /**
     * Side-band ECC (paper Sec. 4.1): when non-zero, the NMA
     * regenerates the SECDED parity for every write-back and stores
     * it in the ECC chips at this parity-region base address, so
     * CPU reads of NMA-written data still verify.
     */
    std::uint64_t eccParityBase = 0;

    /** Energy model: row activation saved by conditional accesses. */
    double rowActivateNanojoule = 7.5;
    /** On-DIMM IO energy per byte moved (25 Gb/s links, Sec. 4.1). */
    double ioPicojoulePerByte = 9.5;

    /**
     * Watchdog deadline, in refresh windows (tREFI intervals): an
     * accepted offload that has not executed after this many
     * windows, or a committed write-back stranded in the SPM that
     * long, is forced to complete with an error (drop callback) so
     * the backend redoes the work on the CPU. 0 disables the
     * watchdog.
     */
    std::uint32_t watchdogWindows = 0;
    /** Health-monitor tuning for the engine and SPM failure
     *  domains (disabled by default: no behaviour change). */
    health::HealthConfig health{};

    /**
     * Submission-queue depth of the async command ring. The default
     * of 1 keeps the legacy synchronous doorbell handshake (no ring
     * is constructed, byte-identical to the pre-ring device);
     * depth >= 2 switches the DIMM to NVMe-style queue pairs:
     * slab-allocated descriptors, one batched SQ tail doorbell per
     * tREFI, phase-bit completion ring, coalesced reaping.
     */
    std::uint32_t sqDepth = 1;
    /**
     * Completion-interrupt coalescing threshold (ring mode only):
     * the device raises the CQ-ready callback once this many
     * records are pending; leftovers are always flushed at the next
     * window boundary. 1 = interrupt per completion.
     */
    std::uint32_t cqCoalesce = 1;
};

/** Device-level statistics. */
struct XfmDeviceStats
{
    std::uint64_t conditionalAccesses = 0;
    std::uint64_t randomAccesses = 0;
    std::uint64_t compressOffloads = 0;
    std::uint64_t decompressOffloads = 0;
    std::uint64_t queueRejects = 0;   ///< submit() failures
    std::uint64_t unregisteredRejects = 0;  ///< address not registered
    std::uint64_t deadlineDrops = 0;  ///< ops abandoned to the CPU
    std::uint64_t watchdogFires = 0;  ///< stuck ops forced to error
    std::uint64_t deferredExecutions = 0;  ///< SPM full at read time
    std::uint64_t engineStalls = 0;   ///< injected stalls/timeouts
    std::uint64_t subarrayConflictRetries = 0;  ///< reordered randoms
    std::uint64_t trrSlotsUsed = 0;   ///< random accesses in TRR slack
    std::uint64_t windows = 0;        ///< refresh windows seen
    std::uint64_t pbWindows = 0;      ///< per-bank REFpb windows seen
    std::uint64_t rfmStolenWindows = 0;  ///< windows destroyed by RFM
    std::uint64_t hiraBonusSlots = 0;  ///< extra slots from HiRA
    std::uint64_t bytesReadFromDram = 0;
    std::uint64_t bytesWrittenToDram = 0;
    std::uint64_t eccParityBytesWritten = 0;
    double accessEnergyNanojoules = 0.0;
    double energySavedNanojoules = 0.0;

    std::uint64_t
    totalAccesses() const
    {
        return conditionalAccesses + randomAccesses;
    }

    /** Fraction of access energy avoided via conditional accesses. */
    double
    energySavedFraction() const
    {
        const double total =
            accessEnergyNanojoules + energySavedNanojoules;
        return total > 0 ? energySavedNanojoules / total : 0.0;
    }
};

/**
 * One XFM-enabled DIMM (NMA in the buffer device).
 *
 * Resource model: the Compress_Request_Queue bounds how many
 * descriptors may be outstanding (submit() fails when it is full);
 * SPM space is reserved when the DRAM read actually executes inside
 * a refresh window, so queued descriptors cost no SPM. Admission
 * control against SPM exhaustion is the driver's job (lazy
 * occupancy bound, paper Sec. 6) — a read that finds the SPM full
 * is simply deferred to a later window.
 */
class XfmDevice : public SimObject
{
  public:
    XfmDevice(std::string name, EventQueue &eq,
              const XfmDeviceConfig &cfg, const dram::AddressMap &map,
              dram::PhysMem &mem, dram::RefreshController &refresh);

    /**
     * Submit an offload descriptor (driver path).
     *
     * @return assigned id, or invalidOffloadId when both the SPM and
     *         the request queue are exhausted (CPU fallback).
     */
    OffloadId submit(const OffloadRequest &req);

    /**
     * Ring-mode submit: write a descriptor into a free SQ slot
     * (same admission checks as submit(); the descriptor is not
     * device-visible until the driver rings the SQ tail doorbell).
     *
     * @return the command's generation tag (the ring-mode
     *         OffloadId), or invalidOffloadId on rejection or
     *         full-SQ backpressure.
     */
    OffloadId ringSubmit(const OffloadRequest &req);

    /** True when cfg.sqDepth >= 2 selected the async command ring. */
    bool ringMode() const { return ring_ != nullptr; }

    /** The DIMM's queue pair (null in legacy depth-1 mode). */
    CommandRing *ring() { return ring_.get(); }

    /**
     * Completion interrupt (ring mode): invoked when pending CQ
     * records reach cfg.cqCoalesce, and at every window boundary
     * with any records left over. The driver reaps from the CQ and
     * acknowledges with one CQ head doorbell write per batch.
     */
    void setCqReadyCallback(std::function<void()> cb)
    {
        cq_ready_ = std::move(cb);
    }

    /**
     * Provide the write-back destination for a completed compress
     * offload (the backend allocates space once the size is known).
     */
    void commitWriteback(OffloadId id, std::uint64_t dst_addr);

    /**
     * Register a DIMM-local address region for NMA access (the
     * driver's page-registration path, Sec. 6). Once any region is
     * registered, offloads touching unregistered addresses are
     * rejected; with no registrations the device is permissive
     * (bring-up mode).
     */
    void registerRegion(std::uint64_t base, std::uint64_t bytes);

    /** True if [addr, addr+size) is NMA-accessible. */
    bool regionRegistered(std::uint64_t addr,
                          std::uint64_t size) const;

    /**
     * Abandon an offload in any pre-writeback state (queued, waiting
     * for a window, computing, or completed-without-destination).
     * SPM space is released; no further callbacks fire for the id.
     */
    void abort(OffloadId id);

    /** Engine finished producing output for an offload. */
    void setCompletionCallback(CompletionCallback cb)
    {
        on_complete_ = std::move(cb);
    }

    /** Output landed in DRAM. */
    void setWritebackCallback(WritebackCallback cb)
    {
        on_writeback_ = std::move(cb);
    }

    /** Offload dropped (deadline, stall, or watchdog); the CPU must
     *  redo it. The reason selects the backend's recovery policy. */
    void setDropCallback(DropCallback cb)
    {
        on_drop_ = std::move(cb);
    }

    /**
     * Cap the SPM bytes offloads tagged with @p partition may stage
     * concurrently (multi-tenant QoS partitioning). Reads that find
     * their partition full are deferred exactly like an SPM-full
     * condition, so capacity pressure propagates per class.
     */
    void
    setSpmPartitionCap(std::uint32_t partition, std::size_t bytes)
    {
        spm_.setPartitionCap(partition, bytes);
    }

    /**
     * Attach a fault injector (may be null to detach). Forwarded to
     * the SPM (allocation-failure sites); the device itself
     * evaluates EngineStall whenever the engine starts an offload —
     * an injected stall abandons the offload (SPM released, drop
     * callback fired) as if the engine timed out mid-window.
     */
    void
    setFaultInjector(fault::FaultInjector *inj)
    {
        injector_ = inj;
        spm_.setFaultInjector(inj);
    }

    /**
     * Attach the deterministic fan-out pool (null detaches); codec
     * work for offloads runs on it while simulated timing stays
     * byte-identical for any worker count.
     */
    void setWorkerPool(WorkerPool *pool)
    {
        engine_.setWorkerPool(pool);
    }

    RegisterFile &regs() { return regs_; }
    const ScratchPad &spm() const { return spm_; }
    const XfmDeviceStats &stats() const { return stats_; }
    const XfmDeviceConfig &config() const { return cfg_; }
    CompressionEngine &engine() { return engine_; }

    /**
     * Register device counters and SPM occupancy under
     * `<prefix>.*` (e.g. "sys.dimm0.conditionalAccesses").
     */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

    /**
     * Attach a span tracer (null detaches). The device records
     * Queue/WindowWait/Classify/Engine/SpmStage/Writeback spans for
     * offloads whose request carries a non-zero traceId; with no
     * tracer attached the hot path only pays a pointer check.
     * Forwarded to the health monitors for transition points.
     */
    void
    setTracer(obs::Tracer *t)
    {
        tracer_ = t;
        engine_health_.setTracer(t);
        spm_health_.setTracer(t);
    }

    /** Attached tracer, if any (the driver records CqReap spans). */
    obs::Tracer *tracer() const { return tracer_; }

    /** Health monitor of the (de)compression engine domain. */
    health::HealthMonitor &engineHealth() { return engine_health_; }
    /** Health monitor of the scratchpad domain. */
    health::HealthMonitor &spmHealth() { return spm_health_; }

    /** Descriptors waiting in the request queue. */
    std::size_t queuedRequests() const { return queue_.size(); }
    /** Accepted reads not yet executed in a window. */
    std::size_t pendingReads() const { return reads_.size(); }

  private:
    /** An accepted offload waiting for its DRAM read slot. */
    struct ReadOp
    {
        OffloadId id;
        OffloadRequest req;
        Tick accepted;
    };

    void onWindow(const dram::RefreshWindow &window);
    void drainQueue();
    /** Ring mode: pull every doorbell-covered descriptor from the
     *  SQ into the pending-read pool. */
    void drainSq();
    /** Ring mode: post a completion record, raising the CQ-ready
     *  interrupt once cfg.cqCoalesce records are pending. */
    void postRecord(CompletionRecord rec);
    /** Ring mode: fire the CQ-ready callback if records pend. */
    void raiseCq();
    /** Route a drop to the CQ (ring) or drop callback (legacy). */
    void deliverDrop(OffloadId id, DropReason reason,
                     std::uint64_t trace_id);
    /** traceId recorded for @p id, or 0 (tracing off / untraced). */
    std::uint64_t traceIdOf(OffloadId id) const;
    void dropExpired(Tick now);
    /** Force completion-with-error for offloads stuck past the
     *  watchdog deadline (cfg.watchdogWindows refresh windows). */
    void runWatchdog(Tick now);
    /** @retval false SPM had no room for the output (deferred). */
    bool executeRead(const ReadOp &op, AccessClass cls);
    void executeWriteback(SpmEntry entry, AccessClass cls);
    void chargeAccess(std::size_t bytes, AccessClass cls);
    std::uint32_t rowOf(std::uint64_t addr) const;
    std::uint32_t bankOf(std::uint64_t addr) const;

    XfmDeviceConfig cfg_;
    const dram::AddressMap &map_;
    dram::PhysMem &mem_;

    ScratchPad spm_;
    CompressRequestQueue queue_;
    /** Async queue pair; null when cfg.sqDepth <= 1 (legacy path). */
    std::unique_ptr<CommandRing> ring_;
    RegisterFile regs_;
    CompressionEngine engine_;
    /** Staging buffers for DRAM reads handed to engine jobs. */
    compress::ScratchArena arena_;

    Tick dev_trefi_ = 0;  ///< tREFI of the attached refresh domain
    dram::DeviceConfig dev_cfg_;  ///< timing of the attached DRAM
    std::uint32_t window_access_index_ = 0;  ///< accesses this window
    /**
     * Representative bank for structural-hazard checking: all-bank
     * refresh touches the same row indices in every bank, so one
     * bank's subarray state decides legality for the whole rank.
     */
    dram::Bank bank_;
    Rng rng_;
    health::HealthMonitor engine_health_;
    health::HealthMonitor spm_health_;
    fault::FaultInjector *injector_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
    /** OffloadId -> traceId, kept only while tracing is attached so
     *  write-back spans can name their request after the
     *  OffloadRequest itself is gone. */
    std::map<OffloadId, std::uint64_t> trace_ids_;
    /** Lazily-allocated timeline for refresh-realism trace points
     *  (REFpb window opens, RFM slot steals). */
    std::uint64_t refresh_trace_req_ = 0;
    std::deque<ReadOp> reads_;
    /** Registered NMA-accessible regions (base -> end). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> regions_;
    /** Offloads aborted while the engine was running. */
    std::set<OffloadId> aborted_;
    /** Injected engine stalls awaiting their drop notification. */
    std::set<OffloadId> stalled_;
    OffloadId next_id_ = 1;

    CompletionCallback on_complete_;
    WritebackCallback on_writeback_;
    DropCallback on_drop_;
    std::function<void()> cq_ready_;

    XfmDeviceStats stats_;
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_XFM_DEVICE_HH
