#include "mmio.hh"

#include "common/logging.hh"

namespace xfm
{
namespace nma
{

RegisterFile::Slot &
RegisterFile::slot(Reg reg)
{
    const auto idx = static_cast<std::size_t>(reg);
    XFM_ASSERT(idx < slots_.size(), "bad register index ", idx);
    return slots_[idx];
}

void
RegisterFile::bindReadOnly(Reg reg, ReadHook hook)
{
    slot(reg).hook = std::move(hook);
}

void
RegisterFile::bindWrite(Reg reg, WriteHook hook)
{
    slot(reg).writeHook = std::move(hook);
}

std::uint64_t
RegisterFile::read(Reg reg)
{
    ++reads_;
    Slot &s = slot(reg);
    return s.hook ? s.hook() : s.value;
}

void
RegisterFile::write(Reg reg, std::uint64_t value)
{
    ++writes_;
    Slot &s = slot(reg);
    if (s.hook)
        fatal("MMIO write to read-only register ",
              static_cast<std::uint32_t>(reg));
    s.value = value;
    if (s.writeHook)
        s.writeHook(value);
}

} // namespace nma
} // namespace xfm
