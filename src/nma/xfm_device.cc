#include "xfm_device.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "dram/ecc.hh"

namespace xfm
{
namespace nma
{

XfmDevice::XfmDevice(std::string name, EventQueue &eq,
                     const XfmDeviceConfig &cfg,
                     const dram::AddressMap &map, dram::PhysMem &mem,
                     dram::RefreshController &refresh)
    : SimObject(std::move(name), eq), cfg_(cfg), map_(map), mem_(mem),
      spm_(cfg.spmBytes), queue_(cfg.queueDepth),
      engine_(cfg.algorithm, cfg.engine),
      bank_(refresh.device()), rng_(cfg.seed),
      engine_health_(cfg.health), spm_health_(cfg.health)
{
    if (cfg_.maxAccessesPerWindow == 0) {
        // Derive the budget from the device timing (paper Sec. 5).
        cfg_.maxAccessesPerWindow =
            dram::maxAccessesPerTrfc(refresh.device());
    }
    XFM_ASSERT(cfg_.maxAccessesPerWindow >= 1,
               "need at least one access per window");
    XFM_ASSERT(cfg_.maxRandomPerWindow <= cfg_.maxAccessesPerWindow,
               "random budget cannot exceed the window budget");

    if (cfg_.cqCoalesce == 0)
        cfg_.cqCoalesce = 1;
    if (cfg_.sqDepth > 1)
        ring_ = std::make_unique<CommandRing>(cfg_.sqDepth);

    regs_.bindReadOnly(Reg::SpCapacity,
                       [this] { return spm_.freeBytes(); });
    regs_.bindReadOnly(Reg::QueueDepth, [this]() -> std::uint64_t {
        return ring_ ? ring_->sq().inFlight() : queue_.size();
    });
    if (ring_) {
        // The tail doorbell is the only way staged descriptors
        // become device-visible: one MMIO write covers a whole
        // tREFI batch.
        regs_.bindWrite(Reg::SqTailDoorbell, [this](std::uint64_t) {
            ring_->sq().ringDoorbell(curTick());
        });
    }

    dev_trefi_ = refresh.device().tREFI();
    dev_cfg_ = refresh.device();
    refresh.addListener([this](const dram::RefreshWindow &w) {
        onWindow(w);
    });
}

std::uint32_t
XfmDevice::rowOf(std::uint64_t addr) const
{
    // Addresses are DIMM-local: the device's AddressMap describes
    // only its own DRAM. cfg_.rank merely selects which refresh
    // windows of a (possibly shared) RefreshController apply.
    return map_.decode(addr).row;
}

std::uint32_t
XfmDevice::bankOf(std::uint64_t addr) const
{
    return map_.decode(addr).bank;
}

void
XfmDevice::registerRegion(std::uint64_t base, std::uint64_t bytes)
{
    XFM_ASSERT(bytes > 0, "empty region");
    regions_.emplace_back(base, base + bytes);
}

bool
XfmDevice::regionRegistered(std::uint64_t addr,
                            std::uint64_t size) const
{
    if (regions_.empty())
        return true;  // bring-up mode: no restrictions configured
    for (const auto &[lo, hi] : regions_)
        if (addr >= lo && addr + size <= hi)
            return true;
    return false;
}

OffloadId
XfmDevice::submit(const OffloadRequest &req)
{
    XFM_ASSERT(req.size > 0, "offload with zero size");
    if (!regionRegistered(req.srcAddr, req.size)
        || (req.kind == OffloadKind::Decompress
            && !regionRegistered(req.dstAddr, req.rawSize))) {
        ++stats_.unregisteredRejects;
        return invalidOffloadId;
    }
    // Circuit breakers: a Failed engine or SPM domain admits no new
    // work at all. The SPM monitor is only consulted (its probes are
    // consumed where reserve() actually runs, in executeRead).
    const Tick now = curTick();
    if (!spm_health_.wouldAdmit(now) || !engine_health_.admit(now))
        return invalidOffloadId;
    OffloadRequest r = req;
    r.id = next_id_++;
    r.submitTick = curTick();
    if (queue_.push(r)) {
        if (tracer_ && r.traceId)
            trace_ids_[r.id] = r.traceId;
        return r.id;
    }
    --next_id_;
    ++stats_.queueRejects;
    engine_health_.cancelProbe(now);  // never reached the engine
    return invalidOffloadId;
}

OffloadId
XfmDevice::ringSubmit(const OffloadRequest &req)
{
    XFM_ASSERT(ring_, "ringSubmit on a device without a command ring");
    XFM_ASSERT(req.size > 0, "offload with zero size");
    if (!regionRegistered(req.srcAddr, req.size)
        || (req.kind == OffloadKind::Decompress
            && !regionRegistered(req.dstAddr, req.rawSize))) {
        ++stats_.unregisteredRejects;
        return invalidOffloadId;
    }
    const Tick now = curTick();
    if (!spm_health_.wouldAdmit(now) || !engine_health_.admit(now))
        return invalidOffloadId;
    OffloadRequest r = req;
    r.submitTick = now;
    const CommandTag tag = ring_->sq().push(r, now);
    if (tag == 0) {
        // Full-SQ backpressure: every slot is owned by an in-flight
        // command, so the descriptor cannot even be written.
        ++stats_.queueRejects;
        engine_health_.cancelProbe(now);
        return invalidOffloadId;
    }
    ring_->sampleOccupancy();
    if (tracer_ && r.traceId)
        trace_ids_[tag] = r.traceId;
    return tag;
}

std::uint64_t
XfmDevice::traceIdOf(OffloadId id) const
{
    const auto it = trace_ids_.find(id);
    return it == trace_ids_.end() ? 0 : it->second;
}

void
XfmDevice::postRecord(CompletionRecord rec)
{
    if (!ring_->cq().post(rec, curTick()))
        fatal(name(), ": completion ring overflow");
    if (ring_->cq().pending() >= cfg_.cqCoalesce)
        raiseCq();
}

void
XfmDevice::raiseCq()
{
    if (cq_ready_ && ring_->cq().pending() > 0)
        cq_ready_();
}

void
XfmDevice::deliverDrop(OffloadId id, DropReason reason,
                       std::uint64_t trace_id)
{
    if (ring_) {
        CompletionRecord rec;
        rec.tag = id;
        rec.type = CompletionType::Drop;
        rec.reason = reason;
        rec.traceId = trace_id;
        postRecord(rec);
    } else if (on_drop_) {
        on_drop_(id, reason);
    }
}

void
XfmDevice::drainSq()
{
    CommandDescriptor d;
    while (ring_->sq().consume(d)) {
        if (tracer_ && d.req.traceId) {
            tracer_->record(d.req.traceId, obs::Stage::SqEnqueue,
                            d.enqueued, d.doorbelled);
            tracer_->record(d.req.traceId, obs::Stage::Queue,
                            d.req.submitTick, curTick());
        }
        reads_.push_back({d.req.id, d.req, curTick()});
    }
}

void
XfmDevice::drainQueue()
{
    // Batch every doorbell'd descriptor received during the last
    // tREFI into the pending-read pool (SPM is reserved later, when
    // the read actually executes).
    while (!queue_.empty()) {
        OffloadRequest req = queue_.pop();
        if (tracer_ && req.traceId)
            tracer_->record(req.traceId, obs::Stage::Queue,
                            req.submitTick, curTick());
        reads_.push_back({req.id, req, curTick()});
    }
}

void
XfmDevice::dropExpired(Tick now)
{
    for (auto it = reads_.begin(); it != reads_.end();) {
        if (it->req.deadline < now) {
            ++stats_.deadlineDrops;
            const std::uint64_t tid = traceIdOf(it->id);
            trace_ids_.erase(it->id);
            // The engine never saw the request; an admission probe
            // consumed at submit would otherwise dangle.
            engine_health_.cancelProbe(now);
            deliverDrop(it->id, DropReason::Deadline, tid);
            it = reads_.erase(it);
        } else {
            ++it;
        }
    }
}

void
XfmDevice::runWatchdog(Tick now)
{
    if (cfg_.watchdogWindows == 0)
        return;
    const Tick limit = Tick(cfg_.watchdogWindows) * dev_trefi_;
    const auto fire = [this, now](OffloadId id) {
        const std::uint64_t tid = traceIdOf(id);
        ++stats_.watchdogFires;
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Fallback, now,
                           obs::fallbackWatchdog);
        trace_ids_.erase(id);
        deliverDrop(id, DropReason::Watchdog, tid);
    };

    // Ring mode: commands whose doorbell was lost (and whose
    // retries ran out) sit in the SQ slab with no way to ever be
    // consumed. Withdraw and drop them; the slot itself is
    // reclaimed when the driver reaps the Drop record, so a healthy
    // queue's in-flight commands are untouched.
    if (ring_) {
        for (CommandTag tag : ring_->sq().strandedSince(now, limit)) {
            if (!ring_->sq().withdraw(tag))
                continue;
            ++ring_->stats().watchdogCancels;
            engine_health_.cancelProbe(now);  // never reached engine
            fire(tag);
        }
    }

    // Doorbell'd offloads that never won a window slot (e.g. an SPM
    // domain stuck Failed, or pathological subarray conflicts).
    for (auto it = reads_.begin(); it != reads_.end();) {
        if (now > it->accepted + limit) {
            const OffloadId id = it->id;
            it = reads_.erase(it);
            engine_health_.cancelProbe(now);  // never executed
            fire(id);
        } else {
            ++it;
        }
    }
    // Committed write-backs stranded in the SPM past the deadline:
    // force completion-with-error and free the staging space.
    for (OffloadId id : spm_.writebackIds()) {
        if (now > spm_.entry(id).stagedAt + limit) {
            spm_.release(id);
            fire(id);
        }
    }
}

void
XfmDevice::chargeAccess(std::size_t bytes, AccessClass cls)
{
    const double io = cfg_.ioPicojoulePerByte
        * static_cast<double>(bytes) / 1000.0;  // pJ -> nJ
    if (cls == AccessClass::Conditional) {
        // The row is open for its refresh already: activation free.
        stats_.accessEnergyNanojoules += io;
        stats_.energySavedNanojoules += cfg_.rowActivateNanojoule;
        ++stats_.conditionalAccesses;
    } else {
        stats_.accessEnergyNanojoules +=
            io + cfg_.rowActivateNanojoule;
        ++stats_.randomAccesses;
    }
}

bool
XfmDevice::executeRead(const ReadOp &op, AccessClass cls)
{
    // Reserve SPM space for the engine output now; if the SPM is
    // full the access is deferred to a later window.
    const std::uint32_t reservation =
        op.req.kind == OffloadKind::Compress
        ? CompressionEngine::worstCaseCompressedSize(op.req.size)
        : op.req.rawSize;
    if (!spm_health_.admit(curTick())) {
        ++stats_.deferredExecutions;
        return false;
    }
    const std::uint64_t inj_before = spm_.injectedReserveFailures();
    if (!spm_.reserve(op.id, op.req.kind, reservation,
                      op.req.partition)) {
        // Capacity or partition-cap exhaustion is load, not a bank
        // fault; only injected reservation failures count against
        // the SPM's health.
        if (spm_.injectedReserveFailures() > inj_before)
            spm_health_.recordFault(curTick());
        else
            spm_health_.cancelProbe(curTick());
        ++stats_.deferredExecutions;
        return false;
    }
    spm_health_.recordSuccess(curTick());
    if (op.req.kind == OffloadKind::Decompress)
        spm_.setDestination(op.id, op.req.dstAddr);

    chargeAccess(op.req.size, cls);
    stats_.bytesReadFromDram += op.req.size;
    // Fig. 6b: the k-th access of this window finishes bursting at
    // tRCD + tCL + (k+1) x 32 x tBURST past the window start.
    const Tick transfer =
        dram::accessCompletionOffset(dev_cfg_, window_access_index_);
    ++window_access_index_;

    if (tracer_ && op.req.traceId) {
        tracer_->record(op.req.traceId, obs::Stage::WindowWait,
                        op.accepted, curTick());
        tracer_->point(op.req.traceId, obs::Stage::Classify,
                       curTick(),
                       cls == AccessClass::Conditional ? 0 : 1);
    }

    auto staged = arena_.acquire(op.req.size);
    mem_.read(op.req.srcAddr, op.req.size, *staged);
    const OffloadId id = op.id;
    const OffloadKind kind = op.req.kind;

    if (injector_
        && injector_->shouldInject(fault::FaultSite::EngineStall)) {
        // Injected engine stall/timeout: the access slot and DRAM
        // read were spent but the engine never produces output.
        // Release the staging space and report the offload dropped
        // so the driver/backend redo the work on the CPU.
        ++stats_.engineStalls;
        engine_health_.recordFault(curTick());
        spm_.release(id);
        const std::uint64_t tid = traceIdOf(id);
        trace_ids_.erase(id);
        stalled_.insert(id);
        eventq().scheduleIn(transfer, [this, id, tid] {
            if (!stalled_.erase(id))
                return;  // aborted before the timeout was noticed
            deliverDrop(id, DropReason::EngineStall, tid);
        }, EventQueue::defaultPriority, eventDomain());
        return true;
    }

    EngineJob job;
    Tick latency;
    if (kind == OffloadKind::Compress) {
        ++stats_.compressOffloads;
        std::tie(job, latency) =
            engine_.compressDeferred(std::move(staged), op.req.dict);
    } else {
        ++stats_.decompressOffloads;
        std::tie(job, latency) =
            engine_.decompressDeferred(std::move(staged),
                                       op.req.rawSize, op.req.dict);
    }

    if (tracer_ && op.req.traceId)
        tracer_->record(op.req.traceId, obs::Stage::Engine,
                        curTick(), curTick() + transfer + latency);

    eventq().scheduleIn(transfer + latency,
                        [this, id, kind,
                         job = std::move(job)]() mutable {
        engine_health_.recordSuccess(curTick());
        if (aborted_.erase(id))
            return;  // offload abandoned mid-compute
        Bytes out = job.take();
        const auto out_size = static_cast<std::uint32_t>(out.size());
        spm_.complete(id, std::move(out), curTick());
        if (ring_) {
            CompletionRecord rec;
            rec.tag = id;
            rec.kind = kind;
            rec.type = CompletionType::Complete;
            rec.outputSize = out_size;
            rec.traceId = traceIdOf(id);
            postRecord(rec);
        } else if (on_complete_) {
            on_complete_({id, kind, out_size, curTick()});
        }
    }, EventQueue::defaultPriority, eventDomain());
    return true;
}

void
XfmDevice::executeWriteback(SpmEntry entry, AccessClass cls)
{
    const std::uint64_t tid = traceIdOf(entry.id);
    chargeAccess(entry.data.size(), cls);
    stats_.bytesWrittenToDram += entry.data.size();
    const Tick transfer =
        dram::accessCompletionOffset(dev_cfg_, window_access_index_);
    ++window_access_index_;
    mem_.write(entry.dstAddr, entry.data);

    if (tracer_) {
        const auto tid = trace_ids_.find(entry.id);
        if (tid != trace_ids_.end()) {
            tracer_->record(tid->second, obs::Stage::SpmStage,
                            entry.stagedAt, curTick());
            tracer_->record(tid->second, obs::Stage::Writeback,
                            curTick(), curTick() + transfer);
            trace_ids_.erase(tid);
        }
    }

    // Sec. 4.1: regenerate the side-band SECDED parity for every
    // 64-bit word the write-back touched, so the memory controller
    // can still verify CPU reads of this data.
    if (cfg_.eccParityBase != 0) {
        const std::uint64_t start = entry.dstAddr & ~std::uint64_t(7);
        const std::uint64_t end =
            (entry.dstAddr + entry.data.size() + 7)
            & ~std::uint64_t(7);
        const Bytes words = mem_.read(start, end - start);
        Bytes parity((end - start) / 8);
        for (std::size_t w = 0; w < parity.size(); ++w) {
            std::uint64_t word;
            std::memcpy(&word, words.data() + w * 8, 8);
            parity[w] = dram::ecc::encode(word);
        }
        mem_.write(cfg_.eccParityBase + start / 8, parity);
        stats_.eccParityBytesWritten += parity.size();
    }

    if (ring_) {
        eventq().scheduleIn(transfer, [this, id = entry.id, tid] {
            CompletionRecord rec;
            rec.tag = id;
            rec.type = CompletionType::Writeback;
            rec.traceId = tid;
            postRecord(rec);
        }, EventQueue::defaultPriority, eventDomain());
    } else if (on_writeback_) {
        eventq().scheduleIn(transfer,
                            [this, id = entry.id] {
            on_writeback_(id, curTick());
        }, EventQueue::defaultPriority, eventDomain());
    }
}

void
XfmDevice::commitWriteback(OffloadId id, std::uint64_t dst_addr)
{
    const auto &e = spm_.entry(id);
    if (!regionRegistered(dst_addr,
                          std::max<std::uint64_t>(e.data.size(), 1)))
        fatal("commitWriteback: destination ", dst_addr,
              " is not in a registered region");
    spm_.setDestination(id, dst_addr);
}

void
XfmDevice::abort(OffloadId id)
{
    trace_ids_.erase(id);
    if (ring_) {
        if (!ring_->sq().validTag(id))
            return;  // already retired (or never issued)
        if (ring_->sq().cancel(id)) {
            // Unconsumed descriptor: the engine never saw it.
            engine_health_.cancelProbe(curTick());
            return;
        }
        // Consumed: walk the in-flight states, then retire the slot
        // so any completion record already posted for this command
        // reads as stale at reap time.
        if (stalled_.erase(id)) {
            ring_->sq().retire(id);
            return;
        }
        for (auto it = reads_.begin(); it != reads_.end(); ++it) {
            if (it->id == id) {
                reads_.erase(it);
                engine_health_.cancelProbe(curTick());
                ring_->sq().retire(id);
                return;
            }
        }
        if (spm_.contains(id)) {
            const bool pend = spm_.entry(id).tag == SpmTag::Pending;
            spm_.release(id);
            if (pend)
                aborted_.insert(id);
        }
        ring_->sq().retire(id);
        return;
    }
    if (stalled_.erase(id))
        return;  // stall already released SPM; drop will not fire
    if (queue_.removeById(id)) {
        // Still a queued descriptor: no SPM held, and the engine
        // never saw it — return any admission probe slot.
        engine_health_.cancelProbe(curTick());
        return;
    }
    for (auto it = reads_.begin(); it != reads_.end(); ++it) {
        if (it->id == id) {
            reads_.erase(it);  // not yet executed: no SPM held
            engine_health_.cancelProbe(curTick());
            return;
        }
    }
    // Engine running (Pending) or finished (Completed): drop the SPM
    // entry; a still-running engine event checks aborted_ and skips.
    const bool pending = spm_.entry(id).tag == SpmTag::Pending;
    spm_.release(id);
    if (pending)
        aborted_.insert(id);
}

void
XfmDevice::registerMetrics(obs::MetricRegistry &r,
                           const std::string &prefix)
{
    const std::string p = prefix + ".";
    r.counter(p + "windows", &stats_.windows,
              "refresh windows observed");
    r.counter(p + "conditionalAccesses",
              &stats_.conditionalAccesses);
    r.counter(p + "randomAccesses", &stats_.randomAccesses);
    r.counter(p + "compressOffloads", &stats_.compressOffloads);
    r.counter(p + "decompressOffloads", &stats_.decompressOffloads);
    r.counter(p + "queueRejects", &stats_.queueRejects);
    r.counter(p + "unregisteredRejects",
              &stats_.unregisteredRejects);
    r.counter(p + "deadlineDrops", &stats_.deadlineDrops);
    r.counter(p + "watchdogFires", &stats_.watchdogFires,
              "stuck offloads forced to complete with error");
    r.counter(p + "deferredExecutions", &stats_.deferredExecutions,
              "SPM full at read time");
    r.counter(p + "engineStalls", &stats_.engineStalls,
              "injected engine stalls/timeouts");
    r.counter(p + "subarrayConflictRetries",
              &stats_.subarrayConflictRetries);
    r.counter(p + "trrSlotsUsed", &stats_.trrSlotsUsed);
    r.counter(p + "dramBytesRead", &stats_.bytesReadFromDram);
    r.counter(p + "dramBytesWritten", &stats_.bytesWrittenToDram);
    r.counter(p + "eccParityBytes", &stats_.eccParityBytesWritten);
    r.gauge(p + "accessEnergyNanojoules",
            &stats_.accessEnergyNanojoules);
    r.gauge(p + "energySavedNanojoules",
            &stats_.energySavedNanojoules);
    r.derived(p + "energySavedFraction",
              [this] { return stats_.energySavedFraction(); },
              "activation energy avoided by conditional accesses");
    r.derived(p + "spm.usedBytes",
              [this] {
                  return static_cast<double>(spm_.usedBytes());
              });
    r.derived(p + "spm.freeBytes",
              [this] {
                  return static_cast<double>(spm_.freeBytes());
              });
    // Refresh-realism counters only exist when the feature is
    // armed, so a default device's snapshot keeps the legacy
    // metric namespace byte-identical.
    if (dev_cfg_.refreshRealismArmed()) {
        r.counter(p + "pbWindows", &stats_.pbWindows,
                  "per-bank REFpb windows seen");
        r.counter(p + "rfmStolenWindows", &stats_.rfmStolenWindows,
                  "service windows destroyed by RFM");
        r.counter(p + "hiraBonusSlots", &stats_.hiraBonusSlots,
                  "extra slots granted by HiRA overlap");
    }
    engine_health_.registerMetrics(r, p + "health.engine");
    spm_health_.registerMetrics(r, p + "health.spm");
    // Ring counters exist only in ring mode, so a depth-1 device's
    // snapshot stays byte-identical to the pre-ring schema.
    if (ring_)
        ring_->registerMetrics(r, prefix);
}

void
XfmDevice::onWindow(const dram::RefreshWindow &window)
{
    if (window.rank != cfg_.rank)
        return;
    ++stats_.windows;
    window_access_index_ = 0;
    bank_.beginRefresh(window.firstRow, window.rowCount);

    if (ring_) {
        // The window boundary closes the previous tREFI batch: flush
        // any completion records the coalescing threshold left
        // unreaped, then pull newly doorbell'd descriptors.
        raiseCq();
        drainSq();
    } else {
        drainQueue();
    }
    dropExpired(window.start);
    runWatchdog(window.start);

    // Per-bank REFpb window: only the refreshing bank's rows are
    // reachable, within the shorter tRFCpb budget.
    const bool pb = window.bank != dram::RefreshWindow::allBanks;
    std::uint32_t slots = cfg_.maxAccessesPerWindow;
    if (pb) {
        ++stats_.pbWindows;
        slots = dram::maxAccessesPerWindowOf(dev_cfg_,
                                             dev_cfg_.tRFCpb);
        if (tracer_) {
            if (!refresh_trace_req_)
                refresh_trace_req_ = tracer_->begin();
            tracer_->point(refresh_trace_req_, obs::Stage::RefPb,
                           window.start, window.bank);
        }
    }
    std::uint32_t random_budget = cfg_.maxRandomPerWindow;
    const std::uint32_t rows_per_bank = map_.rowsPerBank();

    // TRR slack: each reserved victim-row refresh cycle that goes
    // unused this window becomes one extra random access slot.
    std::uint32_t trr_bonus = 0;
    for (std::uint32_t k = 0; k < cfg_.trrRandomSlots; ++k)
        if (rng_.chance(cfg_.trrUnusedProbability))
            ++trr_bonus;
    slots += trr_bonus;
    random_budget += trr_bonus;

    // HiRA overlap hides one extra activation behind the refresh,
    // widening both budgets by a slot.
    if (window.hira) {
        ++stats_.hiraBonusSlots;
        ++slots;
        ++random_budget;
    }

    // An RFM riding this slot steals the NMA's service window
    // entirely: the bank is busy with the forced victim refresh.
    if (window.rfm) {
        ++stats_.rfmStolenWindows;
        if (tracer_) {
            if (!refresh_trace_req_)
                refresh_trace_req_ = tracer_->begin();
            tracer_->point(refresh_trace_req_, obs::Stage::Rfm,
                           window.start,
                           pb ? window.bank : window.rank);
        }
        slots = 0;
        random_budget = 0;
    }

    // Under a per-bank window, conditional accesses must land in
    // the refreshing bank; randoms too, unless HiRA overlap lets an
    // activation hide elsewhere.
    const auto cond_reachable = [&](std::uint64_t addr) {
        return !pb || bankOf(addr) == window.bank;
    };
    const auto rand_reachable = [&](std::uint64_t addr) {
        return !pb || window.hira || bankOf(addr) == window.bank;
    };

    // Pass 1: conditional write-backs (rows being refreshed now).
    for (OffloadId id : spm_.writebackIds()) {
        if (slots == 0)
            break;
        const SpmEntry &e = spm_.entry(id);
        if (e.data.empty())
            continue;
        if (window.coversRow(rowOf(e.dstAddr), rows_per_bank)
            && cond_reachable(e.dstAddr)) {
            executeWriteback(spm_.take(id), AccessClass::Conditional);
            --slots;
        }
    }

    // Pass 2: conditional reads.
    for (auto it = reads_.begin(); it != reads_.end() && slots > 0;) {
        if (window.coversRow(rowOf(it->req.srcAddr), rows_per_bank)
            && cond_reachable(it->req.srcAddr)) {
            if (!executeRead(*it, AccessClass::Conditional)) {
                ++it;  // SPM full: deferred
                continue;
            }
            it = reads_.erase(it);
            --slots;
        } else {
            ++it;
        }
    }

    // Pass 3: random accesses, most urgent first. Write-backs of
    // decompressed pages compete with reads on deadline order. A
    // candidate whose subarray is refreshing this window is skipped
    // in favour of the next one (Sec. 5: the pending accesses are
    // reordered to avoid subarray conflicts).
    auto subarray_free = [this](std::uint32_t row) {
        const auto res = bank_.accessRandom(row);
        if (res == dram::BankAccessResult::Ok) {
            bank_.releaseRandom();
            return true;
        }
        ++stats_.subarrayConflictRetries;
        return false;
    };
    while (slots > 0 && random_budget > 0) {
        // Earliest-deadline pending read in a conflict-free
        // subarray.
        auto best_read = reads_.end();
        for (auto it = reads_.begin(); it != reads_.end(); ++it) {
            if (best_read != reads_.end()
                && it->req.deadline >= best_read->req.deadline)
                continue;
            if (!rand_reachable(it->req.srcAddr))
                continue;
            if (!subarray_free(rowOf(it->req.srcAddr)))
                continue;
            best_read = it;
        }

        auto wb_ids = spm_.writebackIds();
        // Conflict-free, reachable write-back candidates only.
        std::erase_if(wb_ids, [&](OffloadId id) {
            const std::uint64_t dst = spm_.entry(id).dstAddr;
            return !rand_reachable(dst)
                || !subarray_free(rowOf(dst));
        });

        // Write-backs normally wait for their destination row's
        // refresh turn; only SPM pressure (or stranding) justifies
        // burning the random slot on one.
        const bool spm_pressure =
            spm_.usedBytes() * 2 > spm_.capacityBytes();
        if (spm_pressure && !wb_ids.empty()) {
            executeWriteback(spm_.take(wb_ids.front()),
                             AccessClass::Random);
        } else if (best_read != reads_.end()) {
            if (!executeRead(*best_read, AccessClass::Random))
                break;  // SPM full: nothing can execute this window
            reads_.erase(best_read);
        } else if (!wb_ids.empty()
                   && curTick() > spm_.entry(wb_ids.front()).stagedAt
                          + 2 * (window.end - window.start
                                 + dev_trefi_)) {
            // A write-back has been stranded (its destination row's
            // refresh turn is far away): use the random slot.
            executeWriteback(spm_.take(wb_ids.front()),
                             AccessClass::Random);
        } else {
            break;
        }
        --slots;
        --random_budget;
        // The last trr_bonus random uses of this window ride in
        // unused TRR cycles rather than the base SALP slot.
        if (random_budget < trr_bonus)
            ++stats_.trrSlotsUsed;
    }
    bank_.endRefresh();
}

} // namespace nma
} // namespace xfm
