/**
 * @file
 * ScratchPad Memory (SPM): the NMA-local staging buffer.
 *
 * Output of the (de)compression engine is parked here with a
 * PENDING tag while compute is underway and a COMPLETED tag once it
 * is ready for write-back to DRAM in a later refresh window
 * (paper Fig. 10). Capacity pressure in the SPM is what back-
 * propagates into CPU fallbacks (Fig. 12).
 */

#ifndef XFM_NMA_SPM_HH
#define XFM_NMA_SPM_HH

#include <cstdint>
#include <map>

#include "common/units.hh"

#include "common/logging.hh"
#include "compress/compressor.hh"
#include "fault/fault.hh"
#include "nma/offload.hh"

namespace xfm
{
namespace nma
{

/** SPM entry lifecycle tag. */
enum class SpmTag
{
    Pending,    ///< engine still producing output
    Completed,  ///< ready for write-back
};

/** One staged buffer inside the SPM. */
struct SpmEntry
{
    OffloadId id = invalidOffloadId;
    SpmTag tag = SpmTag::Pending;
    OffloadKind kind = OffloadKind::Compress;
    Bytes data;               ///< engine output (valid when Completed)
    std::uint32_t reserved;   ///< bytes of SPM this entry holds
    std::uint64_t dstAddr = 0;
    bool writebackReady = false;  ///< destination committed
    Tick stagedAt = 0;            ///< when the entry turned Completed
    std::uint32_t partition = 0;  ///< QoS partition charged (0 = none)
};

/**
 * Byte-accounted scratchpad.
 *
 * Reservations are made pessimistically (worst-case output size)
 * when an offload is accepted and trimmed to the actual output size
 * when the engine completes, mirroring how the backend's lazy
 * occupancy bound over-approximates usage.
 */
class ScratchPad
{
  public:
    explicit ScratchPad(std::size_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
        XFM_ASSERT(capacity_ > 0, "SPM capacity must be positive");
    }

    std::size_t capacityBytes() const { return capacity_; }
    std::size_t usedBytes() const { return used_; }
    std::size_t freeBytes() const { return capacity_ - used_; }
    std::size_t entryCount() const { return entries_.size(); }

    /**
     * Reserve @p bytes for a new offload.
     *
     * @param partition QoS partition to charge. Partition 0 is the
     *        default, uncapped partition; non-zero partitions may be
     *        byte-capped via setPartitionCap() so one tenant class
     *        cannot monopolise the SPM (multi-tenant arbitration).
     * @retval true reservation succeeded and an entry was created.
     * @retval false SPM (or the partition) is full; caller must fall
     *         back to the CPU.
     */
    bool reserve(OffloadId id, OffloadKind kind, std::uint32_t bytes,
                 std::uint32_t partition = 0);

    /**
     * Cap the bytes reservations tagged @p partition may hold
     * concurrently. Partition 0 cannot be capped (it is the
     * default/privileged partition). A cap of 0 removes the cap.
     */
    void setPartitionCap(std::uint32_t partition, std::size_t bytes);

    /** Bytes currently reserved under @p partition. */
    std::size_t partitionUsed(std::uint32_t partition) const;

    /** Configured cap for @p partition (0 = uncapped). */
    std::size_t partitionCap(std::uint32_t partition) const;

    /** Store engine output and mark COMPLETED (trims reservation).
     *  @param when current tick, recorded as the staging time. */
    void complete(OffloadId id, Bytes output, Tick when = 0);

    /** Attach the write-back destination (compress path). */
    void setDestination(OffloadId id, std::uint64_t dst_addr);

    /** Entry lookup; panics if missing. */
    const SpmEntry &entry(OffloadId id) const;

    /** True if the id currently holds an SPM entry. */
    bool contains(OffloadId id) const
    {
        return entries_.find(id) != entries_.end();
    }

    /**
     * Pop one COMPLETED, destination-committed entry (FIFO order).
     *
     * @retval true an entry was popped into @p out.
     */
    bool popWriteback(SpmEntry &out);

    /** Ids of COMPLETED, destination-committed entries (FIFO). */
    std::vector<OffloadId> writebackIds() const;

    /** Remove and return a specific entry (for write-back). */
    SpmEntry take(OffloadId id);

    /** Drop an entry (e.g. aborted offload), releasing its bytes. */
    void release(OffloadId id);

    /**
     * Attach a fault injector (may be null to detach). reserve()
     * then evaluates SpmReserveFail on every call and
     * SpmHighWatermark whenever occupancy already exceeds the
     * plan's watermark fraction; either injection fails the
     * reservation, which the device treats exactly like a full SPM
     * (deferred execution -> eventual deadline drop -> CPU).
     */
    void setFaultInjector(fault::FaultInjector *inj)
    {
        injector_ = inj;
    }

    /** Reservations refused by an injected fault. */
    std::uint64_t injectedReserveFailures() const
    {
        return injected_failures_;
    }

  private:
    void uncharge(const SpmEntry &e, std::size_t bytes);

    fault::FaultInjector *injector_ = nullptr;
    std::uint64_t injected_failures_ = 0;
    std::size_t capacity_;
    std::size_t used_ = 0;
    std::map<OffloadId, SpmEntry> entries_;  ///< ordered => FIFO pops
    std::map<std::uint32_t, std::size_t> partition_caps_;
    std::map<std::uint32_t, std::size_t> partition_used_;
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_SPM_HH
