/**
 * @file
 * Host-Lockout NMA baseline (Boroumand et al. style, the
 * comparison point of Fig. 11).
 *
 * Unlike XFM, this device does not wait for refresh windows: an
 * offload claims the rank *immediately* and holds it — against all
 * host accesses, via MemCtrl::lockRank() — for the whole transfer
 * plus on-DIMM compute. SFM never stalls, but co-running host
 * traffic to the rank does, which is exactly the trade-off the
 * paper quantifies.
 */

#ifndef XFM_NMA_LOCKOUT_DEVICE_HH
#define XFM_NMA_LOCKOUT_DEVICE_HH

#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "nma/engine.hh"
#include "nma/offload.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace nma
{

/** Configuration of the lockout baseline. */
struct LockoutDeviceConfig
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    compress::Algorithm algorithm = compress::Algorithm::ZstdLike;
    EngineProfile engine{};
    /** On-DIMM transfer rate between DRAM and the NMA. */
    double transferGBps = 19.2;
};

/** Lockout-device statistics. */
struct LockoutDeviceStats
{
    std::uint64_t offloads = 0;
    Tick rankLockedTicks = 0;
    std::uint64_t bytesMoved = 0;
};

/**
 * Immediate-service NMA that locks the host out of its rank.
 */
class HostLockoutDevice : public SimObject
{
  public:
    HostLockoutDevice(std::string name, EventQueue &eq,
                      const LockoutDeviceConfig &cfg,
                      dram::PhysMem &mem, dram::MemCtrl &ctrl);

    /**
     * Run an offload now. The rank is locked for the transfer and
     * compute duration; @p done fires when the output is in DRAM.
     *
     * For Compress, the output lands at @p req.dstAddr, which must
     * be pre-assigned (the lockout design has no SPM staging).
     */
    void offload(const OffloadRequest &req, CompletionCallback done);

    const LockoutDeviceStats &stats() const { return stats_; }

    /** Register lockout metrics under `<name()>.*`. */
    void
    registerMetrics(obs::MetricRegistry &r)
    {
        const std::string p = name() + ".";
        r.counter(p + "offloads", &stats_.offloads);
        r.counter(p + "rankLockedTicks", &stats_.rankLockedTicks,
                  "host locked out of the rank");
        r.counter(p + "bytesMoved", &stats_.bytesMoved);
    }

  private:
    Tick transferTime(std::size_t bytes) const;

    LockoutDeviceConfig cfg_;
    dram::PhysMem &mem_;
    dram::MemCtrl &ctrl_;
    CompressionEngine engine_;
    OffloadId next_id_ = 1;
    Tick busy_until_ = 0;

    LockoutDeviceStats stats_;
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_LOCKOUT_DEVICE_HH
