/**
 * @file
 * Command descriptors and completion records for the async NMA
 * command rings (NVMe-style submission/completion queue pairs).
 *
 * A command tag packs a slab slot index with a per-slot generation
 * counter: `(generation << commandSlotBits) | slot`. Generations
 * start at 1 and are bumped every time a slot is retired, so a tag
 * is unique over the life of the ring and never equals
 * `invalidOffloadId` — in ring mode the tag *is* the OffloadId the
 * driver hands out. A completion record carrying a stale generation
 * (its slot was retired by an abort) is rejected at reap time.
 */

#ifndef XFM_NMA_COMMAND_HH
#define XFM_NMA_COMMAND_HH

#include <cstdint>

#include "nma/offload.hh"

namespace xfm
{
namespace nma
{

/** Generation-tagged command identifier (ring-mode OffloadId). */
using CommandTag = std::uint64_t;

/** Bits of the tag reserved for the slab slot index. */
constexpr std::uint32_t commandSlotBits = 16;
/** Maximum submission-queue depth expressible in a tag. */
constexpr std::uint32_t maxCommandSlots = 1u << commandSlotBits;

constexpr std::uint32_t
slotOf(CommandTag tag)
{
    return static_cast<std::uint32_t>(tag
                                      & (maxCommandSlots - 1));
}

constexpr std::uint64_t
generationOf(CommandTag tag)
{
    return tag >> commandSlotBits;
}

constexpr CommandTag
makeTag(std::uint64_t generation, std::uint32_t slot)
{
    return (generation << commandSlotBits) | slot;
}

/**
 * One slab-allocated submission-queue entry. The slot is owned by
 * its command from push() until the driver reaps the command's
 * final completion record (write-back or drop) — descriptors are
 * never reused while the command is in flight.
 */
struct CommandDescriptor
{
    OffloadRequest req;             ///< req.id == makeTag(gen, slot)
    std::uint32_t slot = 0;
    std::uint64_t generation = 1;
    Tick enqueued = 0;    ///< driver wrote the descriptor
    Tick doorbelled = 0;  ///< covered by an SQ tail doorbell write
    bool inUse = false;     ///< slot allocated to a live command
    bool visible = false;   ///< doorbell delivered; device may consume
    bool consumed = false;  ///< device pulled it into execution
};

/** What a completion-queue record reports. */
enum class CompletionType : std::uint8_t
{
    Complete,   ///< engine output staged (compress: size now known)
    Writeback,  ///< output landed in DRAM; command finished
    Drop,       ///< command abandoned; CPU must redo it
};

/** One completion-queue ring entry (phase-bit validity). */
struct CompletionRecord
{
    CommandTag tag = 0;
    OffloadKind kind = OffloadKind::Compress;
    CompletionType type = CompletionType::Complete;
    DropReason reason = DropReason::Deadline;  ///< Drop only
    std::uint32_t outputSize = 0;              ///< Complete only
    Tick tick = 0;            ///< when the device posted the record
    std::uint64_t traceId = 0;
    bool phase = false;       ///< device phase bit at post time
};

} // namespace nma
} // namespace xfm

#endif // XFM_NMA_COMMAND_HH
