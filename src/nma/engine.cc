#include "engine.hh"

#include "common/logging.hh"
#include "compress/dict.hh"

namespace xfm
{
namespace nma
{

CompressionEngine::CompressionEngine(compress::Algorithm algo,
                                     EngineProfile profile)
    : codec_(compress::makeCompressor(algo)), profile_(profile)
{
    XFM_ASSERT(profile_.compressGBps > 0 && profile_.decompressGBps > 0,
               "engine throughput must be positive");
}

Tick
CompressionEngine::durationFor(std::size_t bytes, double gbps) const
{
    // gbps is decimal GB/s; ticks are picoseconds.
    const double ns = static_cast<double>(bytes) / gbps;
    return nanoseconds(ns);
}

std::uint32_t
CompressionEngine::modeledSize(std::size_t input_size)
{
    // Deterministic +/-20% jitter around input/ratio (splitmix64 of
    // a per-engine counter), bounded by the stored-block worst case.
    std::uint64_t z = ++model_counter_ + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    const double u =
        static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
    const double base =
        static_cast<double>(input_size) / profile_.modeledRatio;
    const double size = base * (0.8 + 0.4 * u);
    return std::min<std::uint32_t>(
        static_cast<std::uint32_t>(size),
        worstCaseCompressedSize(
            static_cast<std::uint32_t>(input_size)));
}

std::pair<Bytes, Tick>
CompressionEngine::compress(ByteSpan input,
                            std::shared_ptr<const Bytes> dict)
{
    bytes_compressed_ += input.size();
    Bytes out;
    if (profile_.modeledRatio > 0.0)
        out.assign(modeledSize(input.size()), 0);
    else if (dict && !dict->empty())
        compress::encodeShardRef(*codec_, *dict, input, out);
    else
        codec_->compressInto(input, out);
    return {std::move(out), durationFor(input.size(),
                                        profile_.compressGBps)};
}

std::pair<Bytes, Tick>
CompressionEngine::decompress(ByteSpan block,
                              std::uint32_t expected_raw,
                              std::shared_ptr<const Bytes> dict)
{
    Bytes out;
    if (profile_.modeledRatio > 0.0) {
        XFM_ASSERT(expected_raw > 0,
                   "size-model decompression needs the expected "
                   "output size");
        out.assign(expected_raw, 0);
    } else if (dict && !dict->empty()) {
        // The driver staged the page's preset dictionary alongside
        // the descriptor (DESIGN.md §16); decodeShard validates it
        // against the 0xD2 header and ignores it for plain blocks.
        compress::decodeShard(*codec_, block, *dict, out);
    } else {
        compress::decodeShard(*codec_, block, out);
    }
    bytes_decompressed_ += out.size();
    return {std::move(out), durationFor(out.size(),
                                        profile_.decompressGBps)};
}

std::pair<EngineJob, Tick>
CompressionEngine::compressDeferred(compress::ScratchArena::Lease input,
                                    std::shared_ptr<const Bytes> dict)
{
    const std::size_t n = input->size();
    bytes_compressed_ += n;
    const Tick latency = durationFor(n, profile_.compressGBps);

    EngineJob job;
    job.state_ = std::make_shared<EngineJob::State>();
    auto &state = *job.state_;
    if (profile_.modeledRatio > 0.0) {
        // Inline: the jitter counter must advance in submission
        // order or same-seed runs diverge across worker counts.
        state.out.assign(modeledSize(n), 0);
        return {std::move(job), latency};
    }
    state.input = std::move(input);
    if (dict && dict->empty())
        dict.reset();
    if (pool_ && pool_->parallel()) {
        state.task = pool_->submit(
            [codec = codec_, s = job.state_, d = std::move(dict)] {
                if (d)
                    compress::encodeShardRef(*codec, *d, *s->input,
                                             s->out);
                else
                    codec->compressInto(*s->input, s->out);
            });
    } else if (dict) {
        compress::encodeShardRef(*codec_, *dict, *state.input,
                                 state.out);
    } else {
        codec_->compressInto(*state.input, state.out);
    }
    return {std::move(job), latency};
}

std::pair<EngineJob, Tick>
CompressionEngine::decompressDeferred(
    compress::ScratchArena::Lease input, std::uint32_t expected_raw,
    std::shared_ptr<const Bytes> dict)
{
    EngineJob job;
    job.state_ = std::make_shared<EngineJob::State>();
    auto &state = *job.state_;
    if (dict && dict->empty())
        dict.reset();

    if (profile_.modeledRatio > 0.0) {
        XFM_ASSERT(expected_raw > 0,
                   "size-model decompression needs the expected "
                   "output size");
        state.out.assign(expected_raw, 0);
        bytes_decompressed_ += expected_raw;
        return {std::move(job),
                durationFor(expected_raw, profile_.decompressGBps)};
    }

    if (expected_raw == 0) {
        // Unknown output size: run inline so the latency and byte
        // counter can be charged from the actual output.
        if (dict)
            compress::decodeShard(*codec_, *input, *dict, state.out);
        else
            compress::decodeShard(*codec_, *input, state.out);
        bytes_decompressed_ += state.out.size();
        return {std::move(job), durationFor(state.out.size(),
                                            profile_.decompressGBps)};
    }

    // A valid block decompresses to exactly expected_raw bytes, so
    // charging latency and counters from it at submission keeps both
    // identical to the synchronous path for any worker count.
    bytes_decompressed_ += expected_raw;
    const Tick latency =
        durationFor(expected_raw, profile_.decompressGBps);
    state.input = std::move(input);
    if (pool_ && pool_->parallel()) {
        state.task = pool_->submit(
            [codec = codec_, s = job.state_, d = std::move(dict)] {
                if (d)
                    compress::decodeShard(*codec, *s->input, *d,
                                          s->out);
                else
                    compress::decodeShard(*codec, *s->input, s->out);
            });
    } else if (dict) {
        compress::decodeShard(*codec_, *state.input, *dict,
                              state.out);
    } else {
        compress::decodeShard(*codec_, *state.input, state.out);
    }
    return {std::move(job), latency};
}

} // namespace nma
} // namespace xfm
