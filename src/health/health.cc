#include "health.hh"

#include "common/logging.hh"

namespace xfm
{
namespace health
{

const char *
healthStateName(HealthState s)
{
    switch (s) {
      case HealthState::Healthy: return "healthy";
      case HealthState::Degraded: return "degraded";
      case HealthState::Failed: return "failed";
      case HealthState::Probation: return "probation";
    }
    return "unknown";
}

HealthConfig
HealthConfig::fromConfig(const Config &cfg)
{
    HealthConfig c;
    c.enabled = cfg.getBool("health.enabled", c.enabled);
    c.window = static_cast<std::uint32_t>(
        cfg.getU64("health.window", c.window));
    c.degradeThreshold =
        cfg.getDouble("health.degrade", c.degradeThreshold);
    c.failThreshold = cfg.getDouble("health.fail", c.failThreshold);
    c.failConsecutive = static_cast<std::uint32_t>(
        cfg.getU64("health.fail_consecutive", c.failConsecutive));
    if (cfg.has("health.cooldown_ns"))
        c.cooldown = nanoseconds(cfg.getDouble("health.cooldown_ns"));
    c.probeQuota = static_cast<std::uint32_t>(
        cfg.getU64("health.probe_quota", c.probeQuota));
    c.probeSuccesses = static_cast<std::uint32_t>(
        cfg.getU64("health.probe_successes", c.probeSuccesses));

    if (c.window == 0)
        fatal("health.window must be at least 1");
    if (c.degradeThreshold < 0.0 || c.degradeThreshold > 1.0
        || c.failThreshold < 0.0 || c.failThreshold > 1.0)
        fatal("health thresholds must be fractions in [0, 1]");
    if (c.failThreshold < c.degradeThreshold)
        fatal("health.fail must be >= health.degrade");
    if (c.failConsecutive == 0)
        fatal("health.fail_consecutive must be at least 1");
    if (c.cooldown == 0)
        fatal("health.cooldown_ns must be positive");
    if (c.probeQuota == 0)
        fatal("health.probe_quota must be at least 1");
    if (c.probeSuccesses > c.probeQuota)
        fatal("health.probe_successes cannot exceed the quota");

    // Typos in health.* keys would silently run a scenario with
    // default tuning the author believes was overridden; reject.
    static const char *known[] = {
        "health.enabled", "health.window", "health.degrade",
        "health.fail", "health.fail_consecutive",
        "health.cooldown_ns", "health.probe_quota",
        "health.probe_successes",
    };
    for (const auto &key : cfg.keys()) {
        if (key.rfind("health.", 0) != 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            fatal("unknown health key '", key, "'");
    }
    return c;
}

HealthMonitor::HealthMonitor(const HealthConfig &cfg) : cfg_(cfg)
{
}

void
HealthMonitor::resetWindow()
{
    win_events_ = 0;
    win_faults_ = 0;
    consecutive_faults_ = 0;
}

void
HealthMonitor::transition(HealthState to, Tick now)
{
    if (to == state_)
        return;
    state_ = to;
    resetWindow();
    switch (to) {
      case HealthState::Failed:
        ++stats_.trips;
        failed_at_ = now;
        break;
      case HealthState::Probation:
        probation_at_ = now;
        probes_issued_ = 0;
        probes_inflight_ = 0;
        probe_wins_ = 0;
        break;
      case HealthState::Degraded:
        ++stats_.degrades;
        break;
      case HealthState::Healthy:
        ++stats_.recoveries;
        break;
    }
    if (tracer_) {
        if (!trace_req_)
            trace_req_ = tracer_->begin();
        tracer_->point(trace_req_, obs::Stage::Health, now,
                       static_cast<std::uint64_t>(to));
    }
}

void
HealthMonitor::evaluateWindow(Tick now)
{
    if (win_events_ < cfg_.window)
        return;
    const double frac = static_cast<double>(win_faults_)
        / static_cast<double>(win_events_);
    if (frac >= cfg_.failThreshold)
        transition(HealthState::Failed, now);
    else if (frac >= cfg_.degradeThreshold)
        transition(HealthState::Degraded, now);
    else
        transition(HealthState::Healthy, now);
    win_events_ = 0;
    win_faults_ = 0;
}

HealthState
HealthMonitor::state(Tick now)
{
    if (state_ == HealthState::Failed
        && now >= failed_at_ + cfg_.cooldown)
        transition(HealthState::Probation, now);
    return state_;
}

bool
HealthMonitor::wouldAdmit(Tick now)
{
    if (!cfg_.enabled)
        return true;
    switch (state(now)) {
      case HealthState::Healthy:
      case HealthState::Degraded:
        return true;
      case HealthState::Failed:
        return false;
      case HealthState::Probation:
        if (probes_issued_ < cfg_.probeQuota)
            return true;
        // The round's probes are spent. If none are pending an
        // outcome and another cooldown has passed, a fresh round
        // may open — this is what un-strands a domain whose probe
        // outcomes were lost (e.g. the request fell back on
        // capacity before reaching the component).
        return probes_inflight_ == 0
            && now >= probation_at_ + cfg_.cooldown;
    }
    return true;
}

bool
HealthMonitor::admit(Tick now)
{
    if (!cfg_.enabled)
        return true;
    if (!wouldAdmit(now)) {
        ++stats_.breakerRejects;
        return false;
    }
    if (state_ == HealthState::Probation) {
        if (probes_issued_ >= cfg_.probeQuota) {
            // wouldAdmit() vetted the replenish condition.
            probes_issued_ = 0;
            probe_wins_ = 0;
            probation_at_ = now;
        }
        ++probes_issued_;
        ++probes_inflight_;
        ++stats_.probes;
    }
    return true;
}

void
HealthMonitor::cancelProbe(Tick)
{
    if (!cfg_.enabled || state_ != HealthState::Probation)
        return;
    // stats_.probes keeps counting the admission; only the round's
    // bookkeeping is unwound so the slot can be retried.
    if (probes_inflight_ > 0)
        --probes_inflight_;
    if (probes_issued_ > 0)
        --probes_issued_;
}

void
HealthMonitor::recordSuccess(Tick now)
{
    if (!cfg_.enabled)
        return;
    ++stats_.successes;
    if (state_ == HealthState::Probation) {
        if (probes_inflight_ > 0)
            --probes_inflight_;
        if (++probe_wins_ >= cfg_.probeSuccesses)
            transition(HealthState::Healthy, now);
        return;
    }
    if (state_ == HealthState::Failed)
        return;  // straggler from before the trip
    consecutive_faults_ = 0;
    ++win_events_;
    evaluateWindow(now);
}

void
HealthMonitor::recordFault(Tick now)
{
    if (!cfg_.enabled)
        return;
    ++stats_.faults;
    if (state_ == HealthState::Probation) {
        // Half-open contract: one failed probe re-trips the breaker.
        if (probes_inflight_ > 0)
            --probes_inflight_;
        ++stats_.probeFailures;
        transition(HealthState::Failed, now);
        return;
    }
    if (state_ == HealthState::Failed)
        return;  // straggler from before the trip
    ++win_events_;
    ++win_faults_;
    if (++consecutive_faults_ >= cfg_.failConsecutive) {
        transition(HealthState::Failed, now);
        return;
    }
    evaluateWindow(now);
}

void
HealthMonitor::forceFail(Tick now)
{
    if (!cfg_.enabled)
        return;
    ++stats_.forcedOffline;
    if (state_ == HealthState::Failed)
        failed_at_ = now;  // restart the cooldown
    else
        transition(HealthState::Failed, now);
}

void
HealthMonitor::forceHealthy(Tick now)
{
    if (!cfg_.enabled)
        return;
    transition(HealthState::Healthy, now);
}

void
HealthMonitor::registerMetrics(obs::MetricRegistry &r,
                               const std::string &prefix)
{
    if (!cfg_.enabled)
        return;
    const std::string p = prefix + ".";
    r.counter(p + "successes", &stats_.successes);
    r.counter(p + "faults", &stats_.faults);
    r.counter(p + "trips", &stats_.trips, "transitions into Failed");
    r.counter(p + "degrades", &stats_.degrades);
    r.counter(p + "recoveries", &stats_.recoveries);
    r.counter(p + "probes", &stats_.probes, "half-open admissions");
    r.counter(p + "probeFailures", &stats_.probeFailures);
    r.counter(p + "breakerRejects", &stats_.breakerRejects,
              "admissions refused while Failed");
    r.counter(p + "forcedOffline", &stats_.forcedOffline);
    r.derived(p + "state",
              [this] { return static_cast<double>(state_); },
              "0=healthy 1=degraded 2=failed 3=probation");
}

} // namespace health
} // namespace xfm
