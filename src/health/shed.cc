#include "shed.hh"

#include "common/logging.hh"

namespace xfm
{
namespace health
{

ShedConfig
ShedConfig::fromConfig(const Config &cfg)
{
    ShedConfig c;
    c.enabled = cfg.getBool("shed.enabled", c.enabled);
    c.queueHigh = static_cast<std::size_t>(
        cfg.getU64("shed.queue_high", c.queueHigh));
    c.queueLow = static_cast<std::size_t>(
        cfg.getU64("shed.queue_low", c.queueLow));
    c.spmHigh = cfg.getDouble("shed.spm_high", c.spmHigh);
    c.spmLow = cfg.getDouble("shed.spm_low", c.spmLow);

    if (c.queueLow > c.queueHigh)
        fatal("shed.queue_low must not exceed shed.queue_high");
    if (c.spmHigh < 0.0 || c.spmHigh > 1.0 || c.spmLow < 0.0
        || c.spmLow > 1.0)
        fatal("shed SPM watermarks must be fractions in [0, 1]");
    if (c.spmLow > c.spmHigh)
        fatal("shed.spm_low must not exceed shed.spm_high");

    static const char *known[] = {
        "shed.enabled", "shed.queue_high", "shed.queue_low",
        "shed.spm_high", "shed.spm_low",
    };
    for (const auto &key : cfg.keys()) {
        if (key.rfind("shed.", 0) != 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            fatal("unknown shed key '", key, "'");
    }
    return c;
}

OverloadShedder::OverloadShedder(const ShedConfig &cfg) : cfg_(cfg)
{
}

void
OverloadShedder::observe(std::size_t queued, double spm_fraction,
                         Tick now)
{
    if (!cfg_.enabled)
        return;
    if (!shedding_) {
        if (queued > cfg_.queueHigh || spm_fraction > cfg_.spmHigh) {
            shedding_ = true;
            ++stats_.engages;
            if (tracer_) {
                if (!trace_req_)
                    trace_req_ = tracer_->begin();
                tracer_->point(trace_req_, obs::Stage::Shed, now, 1);
            }
        }
        return;
    }
    // Hysteresis: disengage only when both signals are calm again.
    if (queued <= cfg_.queueLow && spm_fraction <= cfg_.spmLow) {
        shedding_ = false;
        ++stats_.disengages;
        if (tracer_) {
            if (!trace_req_)
                trace_req_ = tracer_->begin();
            tracer_->point(trace_req_, obs::Stage::Shed, now, 0);
        }
    }
}

ShedDecision
OverloadShedder::decide(bool latency_class, bool is_swap_out)
{
    if (!cfg_.enabled || !shedding_ || latency_class)
        return ShedDecision::Admit;
    if (is_swap_out) {
        ++stats_.rejects;
        return ShedDecision::Reject;
    }
    ++stats_.downTiers;
    return ShedDecision::DownTier;
}

void
OverloadShedder::registerMetrics(obs::MetricRegistry &r,
                                 const std::string &prefix)
{
    if (!cfg_.enabled)
        return;
    const std::string p = prefix + ".";
    r.counter(p + "engages", &stats_.engages);
    r.counter(p + "disengages", &stats_.disengages);
    r.counter(p + "rejects", &stats_.rejects,
              "batch swap-outs refused while overloaded");
    r.counter(p + "downTiers", &stats_.downTiers,
              "batch ops forced onto the CPU path");
    r.derived(p + "active",
              [this] { return shedding_ ? 1.0 : 0.0; });
}

} // namespace health
} // namespace xfm
