/**
 * @file
 * Overload shedding for the far-memory service layer.
 *
 * When the shared offload path saturates — the QoS arbiter's queue
 * backs up past a high-watermark, or the NMA scratchpads run near
 * full — admitting more best-effort work only converts it into CPU
 * fallbacks after it has already consumed queue slots. The
 * OverloadShedder turns that pressure into explicit backpressure at
 * the service boundary: batch-class swap-outs are rejected with a
 * typed Rejected{Overload} outcome (the controller keeps the page
 * local and retries later), batch swap-ins are down-tiered to the
 * CPU path, and latency-class tenants are never shed.
 *
 * Hysteresis: shedding engages above the high watermarks and only
 * disengages once *both* signals fall below their low watermarks, so
 * the decision does not oscillate at the boundary.
 */

#ifndef XFM_HEALTH_SHED_HH
#define XFM_HEALTH_SHED_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/units.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"

namespace xfm
{
namespace health
{

/** What the shedder decided for one submission. */
enum class ShedDecision : std::uint8_t
{
    Admit,     ///< proceed as requested
    DownTier,  ///< proceed, but on the CPU path (no offload)
    Reject,    ///< refuse outright (typed Rejected{Overload})
};

/**
 * Watermark tuning.
 *
 * Config keys (all optional under the `shed.` prefix):
 *
 *   shed.enabled    = 1      # master switch (default off)
 *   shed.queue_high = 64     # arbiter backlog engaging shedding
 *   shed.queue_low  = 16     # backlog at which it may disengage
 *   shed.spm_high   = 0.90   # SPM occupancy fraction engaging
 *   shed.spm_low    = 0.70   # occupancy at which it may disengage
 */
struct ShedConfig
{
    bool enabled = false;
    std::size_t queueHigh = 64;
    std::size_t queueLow = 16;
    double spmHigh = 0.90;
    double spmLow = 0.70;

    /** Parse the shed.* keys of a Config (missing keys = defaults).
     *  @throws FatalError on an unknown key under shed. */
    static ShedConfig fromConfig(const Config &cfg);
};

/** Shedder counters. */
struct ShedStats
{
    std::uint64_t engages = 0;     ///< transitions into shedding
    std::uint64_t disengages = 0;  ///< transitions out of shedding
    std::uint64_t rejects = 0;     ///< batch swap-outs refused
    std::uint64_t downTiers = 0;   ///< batch ops forced onto the CPU
};

/**
 * Hysteretic overload detector + class-aware shed policy.
 *
 * observe() feeds the current queue depth and SPM occupancy (called
 * from the arbiter's dispatch window and at submission time);
 * decide() classifies one submission while the detector is engaged.
 */
class OverloadShedder
{
  public:
    /** Disabled shedder: always admits. */
    OverloadShedder() = default;

    explicit OverloadShedder(const ShedConfig &cfg);

    bool enabled() const { return cfg_.enabled; }
    const ShedConfig &config() const { return cfg_; }

    /** Update the engaged/disengaged state from fresh signals. */
    void observe(std::size_t queued, double spm_fraction, Tick now);

    /** Currently shedding? */
    bool shedding() const { return shedding_; }

    /**
     * Classify one submission under the current state.
     *
     * @param latency_class the tenant is latency-sensitive (never
     *        shed; the whole point of shedding batch work).
     * @param is_swap_out   swap-outs are rejected (the page safely
     *        stays local); swap-ins must complete, so they are
     *        down-tiered to the CPU instead.
     */
    ShedDecision decide(bool latency_class, bool is_swap_out);

    const ShedStats &stats() const { return stats_; }

    /** Register counters + engaged gauge under `<prefix>.*`
     *  (no-op while disabled, keeping baseline namespaces stable). */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

    /** Attach a span tracer (null detaches): engage/disengage emit
     *  instantaneous Stage::Shed points (arg: 1=engage 0=disengage). */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

  private:
    ShedConfig cfg_{};
    bool shedding_ = false;
    ShedStats stats_{};
    obs::Tracer *tracer_ = nullptr;
    std::uint64_t trace_req_ = 0;
};

} // namespace health
} // namespace xfm

#endif // XFM_HEALTH_SHED_HH
