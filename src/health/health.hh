/**
 * @file
 * Component health tracking and circuit breaking for the XFM stack.
 *
 * PR 2 gave every layer deterministic fault injection with per-
 * request retry/backoff, but each fault was still treated as an
 * isolated incident: a persistently sick NMA engine or a dead
 * channel would be retried forever at full rate. This subsystem
 * adds the availability contract on top: each failure domain — an
 * NMA engine, an SPM bank, an MMIO doorbell, a channel shard — owns
 * a HealthMonitor that follows windowed fault/success rates through
 *
 *     Healthy -> Degraded -> Failed -> Probation -> Healthy
 *
 * and the drivers/backends consult it as a circuit breaker: a
 * Failed component is not offloaded to at all (the retry ladder is
 * skipped), and after a cooldown a bounded number of half-open
 * probe requests decide whether it re-closes or re-trips.
 *
 * Determinism: monitors are driven purely by recorded outcomes and
 * event-queue ticks — no wall clock, no RNG — so a same-seed run
 * reproduces the exact health timeline byte for byte.
 */

#ifndef XFM_HEALTH_HEALTH_HH
#define XFM_HEALTH_HEALTH_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/units.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"

namespace xfm
{
namespace health
{

/** Circuit-breaker state of one failure domain. */
enum class HealthState : std::uint8_t
{
    Healthy,    ///< fault rate below the degrade threshold
    Degraded,   ///< elevated fault rate; still admitting work
    Failed,     ///< breaker open: no work admitted
    Probation,  ///< half-open: bounded probe requests admitted
};

constexpr std::size_t healthStateCount = 4;

/** Stable lowercase identifier used in stats and traces. */
const char *healthStateName(HealthState s);

/**
 * Monitor tuning, shared by every failure domain of a backend.
 *
 * Config keys (all optional under the `health.` prefix):
 *
 *   health.enabled         = 1       # master switch (default off)
 *   health.window          = 16      # outcomes per evaluation window
 *   health.degrade         = 0.25    # fault fraction -> Degraded
 *   health.fail            = 0.5     # fault fraction -> Failed
 *   health.fail_consecutive = 8      # consecutive faults -> Failed
 *   health.cooldown_ns     = 100000  # Failed -> Probation delay
 *   health.probe_quota     = 4       # probes per half-open round
 *   health.probe_successes = 3       # probe wins to re-close
 */
struct HealthConfig
{
    /** Master switch; a disabled monitor admits everything and
     *  records nothing, so baseline runs are bit-identical. */
    bool enabled = false;
    /** Outcomes per evaluation window. */
    std::uint32_t window = 16;
    /** Fault fraction at/above which the domain turns Degraded. */
    double degradeThreshold = 0.25;
    /** Fault fraction at/above which the breaker trips to Failed. */
    double failThreshold = 0.5;
    /** Consecutive faults that trip the breaker immediately,
     *  without waiting for a full window (fast trip). */
    std::uint32_t failConsecutive = 8;
    /** Failed -> Probation delay (and probe-round replenish delay). */
    Tick cooldown = microseconds(100.0);
    /** Probe requests admitted per half-open round. */
    std::uint32_t probeQuota = 4;
    /** Probe successes required to re-close the breaker. */
    std::uint32_t probeSuccesses = 3;

    /** Parse the health.* keys of a Config (missing keys = defaults).
     *  @throws FatalError on an unknown key under health. */
    static HealthConfig fromConfig(const Config &cfg);
};

/** Monitor counters (registered into the MetricRegistry). */
struct HealthStats
{
    std::uint64_t successes = 0;
    std::uint64_t faults = 0;
    std::uint64_t trips = 0;          ///< transitions into Failed
    std::uint64_t degrades = 0;       ///< transitions into Degraded
    std::uint64_t recoveries = 0;     ///< transitions into Healthy
    std::uint64_t probes = 0;         ///< half-open probes admitted
    std::uint64_t probeFailures = 0;  ///< probes that re-tripped
    std::uint64_t breakerRejects = 0; ///< admissions refused
    std::uint64_t forcedOffline = 0;  ///< administrative forceFail()s
};

/**
 * Windowed fault-rate state machine for one failure domain.
 *
 * The owner reports outcomes (recordSuccess / recordFault) and asks
 * admit() before handing the component new work. All methods take
 * the current event-queue tick explicitly, so the monitor stays a
 * plain object usable from any layer.
 */
class HealthMonitor
{
  public:
    /** Disabled monitor: admits everything, records nothing. */
    HealthMonitor() = default;

    explicit HealthMonitor(const HealthConfig &cfg);

    bool enabled() const { return cfg_.enabled; }
    const HealthConfig &config() const { return cfg_; }

    /**
     * Current state, advancing Failed -> Probation when the cooldown
     * has elapsed. Use rawState() to observe without advancing.
     */
    HealthState state(Tick now);
    HealthState rawState() const { return state_; }

    /**
     * Circuit-breaker gate: may the component be given new work now?
     *
     * Failed refuses; Probation admits up to probeQuota probes per
     * half-open round (a new round replenishes after another
     * cooldown, so probes whose outcome was lost cannot strand the
     * domain in Probation forever). Consumes a probe slot on admit —
     * use wouldAdmit() to test several domains before committing.
     */
    bool admit(Tick now);

    /** admit() without consuming a probe slot or counting a reject. */
    bool wouldAdmit(Tick now);

    /**
     * An admitted probe never actually exercised the component (the
     * work was deferred for an unrelated reason, e.g. capacity):
     * return the slot so the half-open round is not charged a
     * missing outcome. No-op outside Probation.
     */
    void cancelProbe(Tick now);

    /** The component completed work without incident. */
    void recordSuccess(Tick now);

    /** The component faulted (injected or organic). */
    void recordFault(Tick now);

    /**
     * Administrative offlining: trip the breaker immediately (e.g.
     * a channel declared dead by an operator or a watchdog escalation
     * policy). The normal Probation/recovery path still applies.
     */
    void forceFail(Tick now);

    /** Administrative reset to Healthy, clearing window state. */
    void forceHealthy(Tick now);

    /** Probes admitted whose outcome has not been recorded yet. */
    std::uint32_t outstandingProbes() const { return probes_inflight_; }

    const HealthStats &stats() const { return stats_; }

    /**
     * Register the monitor's counters plus a derived numeric state
     * under `<prefix>.*` (no-op when the monitor is disabled, so
     * health-off runs keep their metric namespace unchanged).
     */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

    /**
     * Attach a span tracer (null detaches). Every state transition
     * then emits an instantaneous Stage::Health point whose arg
     * encodes the new state; the monitor lazily allocates one
     * request id for its whole timeline.
     */
    void setTracer(obs::Tracer *t) { tracer_ = t; }

  private:
    void transition(HealthState to, Tick now);
    void evaluateWindow(Tick now);
    void resetWindow();

    HealthConfig cfg_{};
    HealthState state_ = HealthState::Healthy;

    std::uint32_t win_events_ = 0;
    std::uint32_t win_faults_ = 0;
    std::uint32_t consecutive_faults_ = 0;

    Tick failed_at_ = 0;     ///< when the breaker tripped
    Tick probation_at_ = 0;  ///< when the current probe round opened
    std::uint32_t probes_issued_ = 0;
    std::uint32_t probes_inflight_ = 0;
    std::uint32_t probe_wins_ = 0;

    HealthStats stats_{};
    obs::Tracer *tracer_ = nullptr;
    std::uint64_t trace_req_ = 0;  ///< lazily allocated timeline id
};

} // namespace health
} // namespace xfm

#endif // XFM_HEALTH_HEALTH_HH
