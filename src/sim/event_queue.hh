/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence
 * number) so same-tick events run in a deterministic order. Events
 * are cancellable via the returned EventId.
 *
 * Hot-path design (DESIGN.md §11): entries live in a slab of
 * fixed-size chunks and are recycled through a free list, the heap
 * is an inline std::vector of plain (tick, priority, seq, slot)
 * nodes, and callbacks are stored in an EventCallback with a large
 * small-buffer optimization — so steady-state scheduling performs
 * no heap allocation at all. Cancelled entries are swept out of the
 * heap when they outnumber live ones (see deschedule()).
 */

#ifndef XFM_SIM_EVENT_QUEUE_HH
#define XFM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hh"

namespace xfm
{

/** Handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Move-only callable wrapper with a small-buffer optimization wide
 * enough for the simulator's completion lambdas (which capture a
 * SwapOutcome plus a SwapCallback), so scheduling an event does not
 * touch the heap. Larger or not-nothrow-movable callables fall back
 * to a heap allocation, exactly like std::function.
 */
class EventCallback
{
  public:
    /** Inline storage; device completion lambdas are ~80-120 B. */
    static constexpr std::size_t inlineBytes = 120;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(&storage_))
                Fn(std::forward<F>(f));
            vtable_ = &InlineOps<Fn>::vtable;
        } else {
            ::new (static_cast<void *>(&storage_))
                Fn *(new Fn(std::forward<F>(f)));
            vtable_ = &HeapOps<Fn>::vtable;
        }
    }

    EventCallback(EventCallback &&o) noexcept { moveFrom(o); }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return vtable_ != nullptr; }

    void
    operator()()
    {
        vtable_->invoke(&storage_);
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct dst's storage from src's, destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineOps
    {
        static void
        invoke(void *s)
        {
            (*static_cast<Fn *>(s))();
        }

        static void
        relocate(void *dst, void *src)
        {
            Fn *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        }

        static void
        destroy(void *s)
        {
            static_cast<Fn *>(s)->~Fn();
        }

        static constexpr VTable vtable{&invoke, &relocate, &destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static void
        invoke(void *s)
        {
            (**static_cast<Fn **>(s))();
        }

        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        }

        static void
        destroy(void *s)
        {
            delete *static_cast<Fn **>(s);
        }

        static constexpr VTable vtable{&invoke, &relocate, &destroy};
    };

    void
    moveFrom(EventCallback &o) noexcept
    {
        if (o.vtable_) {
            o.vtable_->relocate(&storage_, &o.storage_);
            vtable_ = o.vtable_;
            o.vtable_ = nullptr;
        }
    }

    void
    reset()
    {
        if (vtable_) {
            vtable_->destroy(&storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[inlineBytes];
    const VTable *vtable_ = nullptr;
};

/**
 * Deterministic discrete-event queue.
 *
 * Lower priority values run first among events scheduled for the
 * same tick; ties break on scheduling order.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Priorities for same-tick ordering (lower runs first). */
    enum Priority : int
    {
        refreshPriority = 0,   ///< refresh state transitions
        deviceMin = 10,        ///< device/bank state machines
        controllerMin = 20,    ///< memory controller decisions
        defaultPriority = 50,  ///< everything else
        statsPriority = 90,    ///< end-of-interval accounting
    };

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute time; must be >= now().
     * @return handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb,
                     int priority = defaultPriority);

    /** Schedule a callback @p delta ticks in the future. */
    EventId
    scheduleIn(Tick delta, Callback cb, int priority = defaultPriority)
    {
        return schedule(now_ + delta, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     *
     * @retval true the event was pending and is now cancelled.
     * @retval false the event already ran or was cancelled.
     */
    bool deschedule(EventId id);

    /** True if no events remain. */
    bool empty() const { return heap_.size() == cancelled_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return heap_.size() - cancelled_; }

    /**
     * Run events until the queue empties or @p limit is reached.
     *
     * @param limit stop once now() would exceed this tick; events at
     *              exactly @p limit still execute.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Run a single event; returns false if none pending. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /** Entry slots currently allocated (capacity, not pending). */
    std::size_t slots() const { return slot_count_; }

    /** Times the cancelled-entry sweep ran (see deschedule()). */
    std::uint64_t compactions() const { return compactions_; }

  private:
    /**
     * Slab entry. The slot index plus a generation counter forms
     * the EventId; the generation is bumped on release so stale
     * handles never resolve to a recycled slot.
     */
    struct Entry
    {
        EventCallback cb;
        std::uint32_t gen = 0;
        bool cancelled = false;
    };

    /** Heap node; everything the comparator needs, no pointers. */
    struct HeapNode
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Max-heap comparator: "a runs later than b". */
    struct Later
    {
        bool
        operator()(const HeapNode &a, const HeapNode &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    static constexpr std::size_t chunkSize = 128;
    /** Don't bother sweeping tiny heaps. */
    static constexpr std::size_t compactMinHeap = 64;

    Entry &
    entry(std::uint32_t slot)
    {
        return chunks_[slot / chunkSize][slot % chunkSize];
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);
    void compact();

    Tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t compactions_ = 0;
    std::size_t cancelled_ = 0;
    std::uint32_t slot_count_ = 0;
    std::vector<HeapNode> heap_;
    std::vector<std::unique_ptr<Entry[]>> chunks_;
    std::vector<std::uint32_t> free_slots_;
};

} // namespace xfm

#endif // XFM_SIM_EVENT_QUEUE_HH
