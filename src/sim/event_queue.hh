/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence
 * number) so same-tick events run in a deterministic order. Events
 * are cancellable via the returned EventId.
 */

#ifndef XFM_SIM_EVENT_QUEUE_HH
#define XFM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/units.hh"

namespace xfm
{

/** Handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Deterministic discrete-event queue.
 *
 * Lower priority values run first among events scheduled for the
 * same tick; ties break on scheduling order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Priorities for same-tick ordering (lower runs first). */
    enum Priority : int
    {
        refreshPriority = 0,   ///< refresh state transitions
        deviceMin = 10,        ///< device/bank state machines
        controllerMin = 20,    ///< memory controller decisions
        defaultPriority = 50,  ///< everything else
        statsPriority = 90,    ///< end-of-interval accounting
    };

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute time; must be >= now().
     * @return handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb,
                     int priority = defaultPriority);

    /** Schedule a callback @p delta ticks in the future. */
    EventId
    scheduleIn(Tick delta, Callback cb, int priority = defaultPriority)
    {
        return schedule(now_ + delta, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     *
     * @retval true the event was pending and is now cancelled.
     * @retval false the event already ran or was cancelled.
     */
    bool deschedule(EventId id);

    /** True if no events remain. */
    bool empty() const { return events_.size() == cancelled_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return events_.size() - cancelled_; }

    /**
     * Run events until the queue empties or @p limit is reached.
     *
     * @param limit stop once now() would exceed this tick; events at
     *              exactly @p limit still execute.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Run a single event; returns false if none pending. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        Callback cb;
        bool cancelled = false;
    };

    struct Order
    {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->id > b->id;
        }
    };

    Tick now_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t cancelled_ = 0;
    std::priority_queue<Entry *, std::vector<Entry *>, Order> events_;
    std::map<EventId, Entry> storage_;
};

} // namespace xfm

#endif // XFM_SIM_EVENT_QUEUE_HH
