/**
 * @file
 * Discrete-event simulation kernel, sharded per event domain.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence
 * number) so same-tick events run in a deterministic order. Events
 * are cancellable via the returned EventId.
 *
 * Hot-path design (DESIGN.md §11): entries live in a slab of
 * fixed-size chunks and are recycled through a free list, the heap
 * is an inline std::vector of plain (tick, priority, seq, slot)
 * nodes, and callbacks are stored in an EventCallback with a large
 * small-buffer optimization — so steady-state scheduling performs
 * no heap allocation at all. Cancelled entries are swept out of the
 * heap when they outnumber live ones (see deschedule()).
 *
 * Sharded parallel core (DESIGN.md §13): the queue can be built
 * with `shards` per-domain sub-queues — domain 0 is the "global"
 * shard (service/tenant/host events), domains 1..N hash onto the
 * channel/DIMM shards. Execution proceeds in conservative windows
 * aligned to tREFI boundaries: at each window barrier every shard
 * drains its slab-pooled heap (heap pops plus tombstone sweeping)
 * on a WorkerPool into an ordered staged batch, then the simulation
 * thread commits callbacks in exact global (tick, priority, seq)
 * merge order across staged batches and live heap tops. Because the
 * commit order is the monolithic order by construction, metrics and
 * traces are byte-identical for any `shards x drainWorkers`
 * combination — even if an event posts across shards mid-window.
 * `shards = 1` (the default) builds no barrier, no window state and
 * no pool, and runs the exact legacy kernel.
 */

#ifndef XFM_SIM_EVENT_QUEUE_HH
#define XFM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hh"

namespace xfm
{

class WorkerPool;

/** Handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Move-only callable wrapper with a small-buffer optimization wide
 * enough for the simulator's completion lambdas (which capture a
 * SwapOutcome plus a SwapCallback), so scheduling an event does not
 * touch the heap. Larger or not-nothrow-movable callables fall back
 * to a heap allocation, exactly like std::function.
 */
class EventCallback
{
  public:
    /** Inline storage; device completion lambdas are ~80-120 B. */
    static constexpr std::size_t inlineBytes = 120;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(&storage_))
                Fn(std::forward<F>(f));
            vtable_ = &InlineOps<Fn>::vtable;
        } else {
            ::new (static_cast<void *>(&storage_))
                Fn *(new Fn(std::forward<F>(f)));
            vtable_ = &HeapOps<Fn>::vtable;
        }
    }

    EventCallback(EventCallback &&o) noexcept { moveFrom(o); }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return vtable_ != nullptr; }

    void
    operator()()
    {
        vtable_->invoke(&storage_);
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct dst's storage from src's, destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineOps
    {
        static void
        invoke(void *s)
        {
            (*static_cast<Fn *>(s))();
        }

        static void
        relocate(void *dst, void *src)
        {
            Fn *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        }

        static void
        destroy(void *s)
        {
            static_cast<Fn *>(s)->~Fn();
        }

        static constexpr VTable vtable{&invoke, &relocate, &destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static void
        invoke(void *s)
        {
            (**static_cast<Fn **>(s))();
        }

        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        }

        static void
        destroy(void *s)
        {
            delete *static_cast<Fn **>(s);
        }

        static constexpr VTable vtable{&invoke, &relocate, &destroy};
    };

    void
    moveFrom(EventCallback &o) noexcept
    {
        if (o.vtable_) {
            o.vtable_->relocate(&storage_, &o.storage_);
            vtable_ = o.vtable_;
            o.vtable_ = nullptr;
        }
    }

    void
    reset()
    {
        if (vtable_) {
            vtable_->destroy(&storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[inlineBytes];
    const VTable *vtable_ = nullptr;
};

/**
 * Sharding configuration for the event core. The defaults are the
 * legacy monolithic kernel; see DESIGN.md §13 for the knobs.
 */
struct EventQueueConfig
{
    /**
     * Per-domain sub-queues. 1 = monolithic legacy kernel (no
     * barrier is built). Each extra shard serves a slice of the
     * channel/DIMM domains; shard 0 always serves domain 0. Capped
     * at 256 by the EventId encoding.
     */
    std::size_t shards = 1;

    /**
     * Conservative-window length: shard drains are batched between
     * barriers at multiples of this tick count. Callers pass the
     * DRAM tREFI (cross-shard traffic — driver submits, reap
     * dispatch, refresh epochs — is tREFI-aligned, so the barrier
     * is natural). The default is the DDR5 8192-per-32ms tREFI.
     * 0 means a single unbounded window. Any value is
     * behavior-preserving; only staging batch sizes change.
     */
    Tick windowTicks = nanoseconds(3906.25);

    /**
     * WorkerPool contexts for the parallel window drain (1 = no
     * pool, drain inline). Results are byte-identical for any
     * value: the pool only performs shard-local heap extraction;
     * callbacks always commit on the simulation thread in global
     * (tick, priority, seq) order.
     */
    std::size_t drainWorkers = 1;

    /**
     * Minimum pending events before a window drain is fanned out to
     * the pool; smaller windows stay inline to avoid barrier
     * latency on idle shards.
     */
    std::size_t parallelStageMin = 128;
};

/**
 * Deterministic discrete-event queue.
 *
 * Lower priority values run first among events scheduled for the
 * same tick; ties break on scheduling order. The ordering contract
 * is independent of the sharding configuration.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Priorities for same-tick ordering (lower runs first). */
    enum Priority : int
    {
        refreshPriority = 0,   ///< refresh state transitions
        deviceMin = 10,        ///< device/bank state machines
        controllerMin = 20,    ///< memory controller decisions
        defaultPriority = 50,  ///< everything else
        statsPriority = 90,    ///< end-of-interval accounting
    };

    /** Domain of service/tenant/host events (always shard 0). */
    static constexpr std::uint32_t globalDomain = 0;

    EventQueue();
    explicit EventQueue(const EventQueueConfig &cfg);
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    EventQueue(EventQueue &&) noexcept = default;
    EventQueue &operator=(EventQueue &&) noexcept = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute time; must be >= now().
     * @param domain event domain (0 = global shard; 1..N = the
     *        posting component's channel/DIMM domain). Purely a
     *        load-balancing hint: any value yields identical
     *        simulated behavior.
     * @return handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb,
                     int priority = defaultPriority,
                     std::uint32_t domain = globalDomain);

    /** Schedule a callback @p delta ticks in the future. */
    EventId
    scheduleIn(Tick delta, Callback cb, int priority = defaultPriority,
               std::uint32_t domain = globalDomain)
    {
        return schedule(now_ + delta, std::move(cb), priority, domain);
    }

    /**
     * Cancel a pending event.
     *
     * @retval true the event was pending and is now cancelled.
     * @retval false the event already ran or was cancelled.
     */
    bool deschedule(EventId id);

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const;

    /**
     * Run events until the queue empties or @p limit is reached.
     *
     * @param limit stop once now() would exceed this tick; events at
     *              exactly @p limit still execute.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Run a single event; returns false if none pending. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /** Total successful deschedules over the queue's lifetime. */
    std::uint64_t descheduled() const { return descheduled_; }

    /** Entry slots currently allocated (capacity, not pending). */
    std::size_t slots() const;

    /** Times the cancelled-entry sweep ran, summed over shards. */
    std::uint64_t compactions() const;

    // Sharding introspection -----------------------------------------

    /** Configured shard count (1 = monolithic legacy kernel). */
    std::size_t shards() const { return shards_.size(); }

    /** Conservative-window length in ticks. */
    Tick windowTicks() const { return window_ticks_; }

    /** Shard serving @p domain. */
    std::uint32_t shardOf(std::uint32_t domain) const;

    /** Window barriers crossed (0 while shards() == 1). */
    std::uint64_t barriers() const { return barriers_; }

    /** Events extracted by parallel window staging. */
    std::uint64_t stagedEvents() const { return staged_events_; }

    /** Per-shard cancelled-entry sweeps. */
    std::uint64_t shardCompactions(std::size_t s) const;

    /** Per-shard live tombstones (heap + staged batch). */
    std::size_t shardCancelled(std::size_t s) const;

    /** Per-shard pending (non-cancelled) events. */
    std::size_t shardPending(std::size_t s) const;

    /** Per-shard events executed. */
    std::uint64_t shardExecuted(std::size_t s) const;

  private:
    /**
     * Slab entry. The slot index plus shard id plus a generation
     * counter forms the EventId; the generation is bumped on
     * release so stale handles never resolve to a recycled slot.
     */
    struct Entry
    {
        EventCallback cb;
        std::uint32_t gen = 0;
        bool cancelled = false;
        /**
         * True while the entry's heap node sits in the shard's
         * staged window batch instead of the heap. A deschedule of
         * a staged entry must charge the shard's staged-tombstone
         * count, NOT the heap count: heap compaction can only
         * reclaim heap nodes, so charging staged tombstones there
         * inflates the compaction trigger and permanently skews the
         * sweep accounting (tombstones the sweep can never find).
         */
        bool staged = false;
    };

    /** Heap node; everything the comparator needs, no pointers. */
    struct HeapNode
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Max-heap comparator: "a runs later than b". */
    struct Later
    {
        bool
        operator()(const HeapNode &a, const HeapNode &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** One per-domain sub-queue: slab, free list, heap, batch. */
    struct Shard
    {
        std::vector<HeapNode> heap;
        std::vector<std::unique_ptr<Entry[]>> chunks;
        std::vector<std::uint32_t> free_slots;
        std::uint32_t slot_count = 0;
        /** Tombstones still inside `heap` (compaction's domain). */
        std::size_t cancelled_heap = 0;
        /** Tombstones inside the staged window batch. */
        std::size_t cancelled_staged = 0;
        std::uint64_t compactions = 0;
        std::uint64_t executed = 0;
        /** Current window's batch, ascending (tick,prio,seq). */
        std::vector<HeapNode> staged;
        std::size_t staged_pos = 0;
    };

    static constexpr std::size_t chunkSize = 128;
    /** Don't bother sweeping tiny heaps. */
    static constexpr std::size_t compactMinHeap = 64;

    /** True when @p a commits before @p b (global merge order). */
    static bool
    earlier(const HeapNode &a, const HeapNode &b)
    {
        // Later{} is the max-heap comparator; a precedes b iff b is
        // later than a. Sequence numbers are unique, so ties are
        // impossible.
        return Later{}(b, a);
    }

    Entry &
    entry(Shard &s, std::uint32_t slot)
    {
        return s.chunks[slot / chunkSize][slot % chunkSize];
    }

    const Entry &
    entry(const Shard &s, std::uint32_t slot) const
    {
        return s.chunks[slot / chunkSize][slot % chunkSize];
    }

    std::uint32_t acquireSlot(Shard &s);
    void releaseSlot(Shard &s, std::uint32_t slot);
    void compact(Shard &s);

    /**
     * The shard's next node in merge order (staged front vs heap
     * top), or nullptr. @p from_staged reports the source.
     */
    const HeapNode *shardFront(const Shard &s, bool &from_staged) const;
    /** Remove the node shardFront() reported. */
    void popFront(Shard &s, bool from_staged);
    /** Shard index holding the global minimum node, or -1. */
    int pickMinShard(bool &from_staged) const;

    /** Pop all in-window heap nodes into the staged batch. */
    void stageShard(Shard &s, Tick window_end);
    /** Fan window staging out to the drain pool if worthwhile. */
    void maybeParallelStage(Tick window_end);
    /** Execute staged + heap events with when < window_end. */
    std::uint64_t drainWindow(Tick window_end);
    /** Barrier tick following @p t, capped for @p limit. */
    Tick windowEnd(Tick t, Tick limit) const;

    /** Legacy monolithic loop (shards() == 1 fast path). */
    std::uint64_t runMonolithic(Tick limit);

    Tick now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t descheduled_ = 0;
    std::uint64_t barriers_ = 0;
    std::uint64_t staged_events_ = 0;
    Tick window_ticks_;
    std::size_t parallel_stage_min_;
    bool draining_ = false;
    std::vector<Shard> shards_;
    /** Built only when shards > 1 and drainWorkers > 1. */
    std::unique_ptr<WorkerPool> pool_;
};

} // namespace xfm

#endif // XFM_SIM_EVENT_QUEUE_HH
