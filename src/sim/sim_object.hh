/**
 * @file
 * Base class for named simulation components sharing an EventQueue.
 */

#ifndef XFM_SIM_SIM_OBJECT_HH
#define XFM_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"

namespace xfm
{

/**
 * A named component attached to an event queue.
 *
 * SimObjects never own the queue; a top-level System object (or a
 * test) owns it and wires components together.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eq_(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Tick curTick() const { return eq_.now(); }
    EventQueue &eventq() { return eq_; }
    const EventQueue &eventq() const { return eq_; }

    /**
     * Event domain this component posts into (DESIGN.md §13):
     * 0 — the global shard — by default; per-channel/DIMM
     * components are tagged 1 + index by their owner. Purely a
     * load-balancing hint for the sharded event core; any value
     * yields identical simulated behavior.
     */
    std::uint32_t eventDomain() const { return domain_; }
    void setEventDomain(std::uint32_t d) { domain_ = d; }

  private:
    std::string name_;
    EventQueue &eq_;
    std::uint32_t domain_ = EventQueue::globalDomain;
};

} // namespace xfm

#endif // XFM_SIM_SIM_OBJECT_HH
