#include "event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace
{

constexpr std::uint32_t slotMask = 0xffffffffu;

EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    // slot + 1 keeps the low word nonzero so no id ever collides
    // with invalidEventId.
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
}

} // namespace

std::uint32_t
EventQueue::acquireSlot()
{
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        return slot;
    }
    if (slot_count_ % chunkSize == 0)
        chunks_.emplace_back(std::make_unique<Entry[]>(chunkSize));
    return slot_count_++;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Entry &e = entry(slot);
    e.cb = EventCallback();
    e.cancelled = false;
    // Invalidate every EventId handed out for this incarnation.
    ++e.gen;
    free_slots_.push_back(slot);
}

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    XFM_ASSERT(when >= now_, "scheduling event in the past: when=", when,
               " now=", now_);
    const std::uint32_t slot = acquireSlot();
    Entry &e = entry(slot);
    e.cb = std::move(cb);
    heap_.push_back(HeapNode{when, priority, next_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return makeId(e.gen, slot);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return false;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(id & slotMask) - 1;
    if (slot >= slot_count_)
        return false;
    Entry &e = entry(slot);
    if (e.gen != static_cast<std::uint32_t>(id >> 32) || e.cancelled)
        return false;
    e.cancelled = true;
    // Drop the callback now so captured resources free promptly; the
    // heap node stays behind as a tombstone until popped or swept.
    e.cb = EventCallback();
    ++cancelled_;
    if (cancelled_ > heap_.size() / 2 && heap_.size() >= compactMinHeap)
        compact();
    return true;
}

void
EventQueue::compact()
{
    // Sweep tombstones in one pass instead of letting them trickle
    // through pops; keeps long soaks with heavy deschedule traffic
    // (retry ladders, watchdogs) from growing the heap unboundedly.
    auto keep = heap_.begin();
    for (auto &node : heap_) {
        if (entry(node.slot).cancelled) {
            releaseSlot(node.slot);
        } else {
            *keep++ = node;
        }
    }
    heap_.erase(keep, heap_.end());
    cancelled_ = 0;
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    ++compactions_;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        const HeapNode node = heap_.back();
        heap_.pop_back();
        Entry &e = entry(node.slot);
        if (e.cancelled) {
            --cancelled_;
            releaseSlot(node.slot);
            continue;
        }
        XFM_ASSERT(node.when >= now_, "event queue time went backwards");
        now_ = node.when;
        EventCallback cb = std::move(e.cb);
        // Release before invoking so a callback that reschedules
        // sees the slot free and a self-deschedule returns false —
        // the same contract as the old erase-before-call kernel.
        releaseSlot(node.slot);
        cb();
        ++executed_;
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap_.empty()) {
        const HeapNode &top = heap_.front();
        if (entry(top.slot).cancelled) {
            const std::uint32_t slot = top.slot;
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            heap_.pop_back();
            --cancelled_;
            releaseSlot(slot);
            continue;
        }
        if (top.when > limit)
            break;
        if (step())
            ++n;
    }
    return n;
}

} // namespace xfm
