#include "event_queue.hh"

#include "common/logging.hh"

namespace xfm
{

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    XFM_ASSERT(when >= now_, "scheduling event in the past: when=", when,
               " now=", now_);
    const EventId id = next_id_++;
    auto [it, inserted] =
        storage_.emplace(id, Entry{when, priority, id, std::move(cb)});
    XFM_ASSERT(inserted, "duplicate event id");
    events_.push(&it->second);
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    auto it = storage_.find(id);
    if (it == storage_.end() || it->second.cancelled)
        return false;
    it->second.cancelled = true;
    ++cancelled_;
    return true;
}

bool
EventQueue::step()
{
    while (!events_.empty()) {
        Entry *e = events_.top();
        events_.pop();
        if (e->cancelled) {
            --cancelled_;
            storage_.erase(e->id);
            continue;
        }
        XFM_ASSERT(e->when >= now_, "event queue time went backwards");
        now_ = e->when;
        Callback cb = std::move(e->cb);
        storage_.erase(e->id);
        cb();
        ++executed_;
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!events_.empty()) {
        Entry *e = events_.top();
        if (e->cancelled) {
            events_.pop();
            --cancelled_;
            storage_.erase(e->id);
            continue;
        }
        if (e->when > limit)
            break;
        if (step())
            ++n;
    }
    return n;
}

} // namespace xfm
