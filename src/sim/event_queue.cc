#include "event_queue.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/worker_pool.hh"

namespace xfm
{
namespace
{

// EventId layout: [ gen:32 | shard:8 | slot+1:24 ]. The +1 keeps the
// low word nonzero so no id ever collides with invalidEventId; with
// shard 0 the encoding is exactly the legacy single-queue id.
constexpr std::uint32_t slotBits = 24;
constexpr std::uint32_t slotMask = (1u << slotBits) - 1;
constexpr std::uint32_t maxShards = 256;

EventId
makeId(std::uint32_t gen, std::uint32_t shard, std::uint32_t slot)
{
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(shard) << slotBits) |
           (static_cast<EventId>(slot) + 1);
}

} // namespace

EventQueue::EventQueue() : EventQueue(EventQueueConfig{}) {}

EventQueue::EventQueue(const EventQueueConfig &cfg)
    : window_ticks_(cfg.windowTicks),
      parallel_stage_min_(cfg.parallelStageMin)
{
    XFM_ASSERT(cfg.shards >= 1, "event queue needs at least one shard");
    XFM_ASSERT(cfg.shards <= maxShards,
               "EventId encoding caps shards at ", maxShards);
    shards_.resize(cfg.shards);
    if (cfg.shards > 1 && cfg.drainWorkers > 1)
        pool_ = std::make_unique<WorkerPool>(cfg.drainWorkers);
}

EventQueue::~EventQueue() = default;

std::uint32_t
EventQueue::shardOf(std::uint32_t domain) const
{
    // Shard 0 is reserved for the global domain; channel/DIMM
    // domains 1..N spread round-robin over the remaining shards.
    const std::size_t n = shards_.size();
    if (n == 1 || domain == globalDomain)
        return 0;
    return 1 + (domain - 1) % static_cast<std::uint32_t>(n - 1);
}

std::uint32_t
EventQueue::acquireSlot(Shard &s)
{
    if (!s.free_slots.empty()) {
        const std::uint32_t slot = s.free_slots.back();
        s.free_slots.pop_back();
        return slot;
    }
    if (s.slot_count % chunkSize == 0)
        s.chunks.emplace_back(std::make_unique<Entry[]>(chunkSize));
    XFM_ASSERT(s.slot_count + 1 < slotMask,
               "shard slot space exhausted");
    return s.slot_count++;
}

void
EventQueue::releaseSlot(Shard &s, std::uint32_t slot)
{
    Entry &e = entry(s, slot);
    e.cb = EventCallback();
    e.cancelled = false;
    e.staged = false;
    // Invalidate every EventId handed out for this incarnation.
    ++e.gen;
    s.free_slots.push_back(slot);
}

EventId
EventQueue::schedule(Tick when, Callback cb, int priority,
                     std::uint32_t domain)
{
    XFM_ASSERT(when >= now_, "scheduling event in the past: when=", when,
               " now=", now_);
    const std::uint32_t sh = shardOf(domain);
    Shard &s = shards_[sh];
    const std::uint32_t slot = acquireSlot(s);
    Entry &e = entry(s, slot);
    e.cb = std::move(cb);
    s.heap.push_back(HeapNode{when, priority, next_seq_++, slot});
    std::push_heap(s.heap.begin(), s.heap.end(), Later{});
    return makeId(e.gen, sh, slot);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return false;
    const auto low = static_cast<std::uint32_t>(id);
    const std::uint32_t sh = low >> slotBits;
    if (sh >= shards_.size())
        return false;
    Shard &s = shards_[sh];
    const std::uint32_t slot = (low & slotMask) - 1;
    if (slot >= s.slot_count)
        return false;
    Entry &e = entry(s, slot);
    if (e.gen != static_cast<std::uint32_t>(id >> 32) || e.cancelled)
        return false;
    e.cancelled = true;
    // Drop the callback now so captured resources free promptly; the
    // node stays behind as a tombstone until popped or swept.
    e.cb = EventCallback();
    ++descheduled_;
    if (e.staged) {
        // The node lives in the current window's staged batch, not
        // the heap: charge the staged tombstone count. Charging the
        // heap count instead would inflate the compaction trigger
        // with tombstones the sweep can never reclaim (the
        // regression pinned by EventQueueSharded.*Tombstone* tests).
        ++s.cancelled_staged;
        return true;
    }
    ++s.cancelled_heap;
    if (s.cancelled_heap > s.heap.size() / 2
        && s.heap.size() >= compactMinHeap) {
        compact(s);
    }
    return true;
}

void
EventQueue::compact(Shard &s)
{
    // Sweep tombstones in one pass instead of letting them trickle
    // through pops; keeps long soaks with heavy deschedule traffic
    // (retry ladders, watchdogs) from growing the heap unboundedly.
    auto keep = s.heap.begin();
    for (auto &node : s.heap) {
        if (entry(s, node.slot).cancelled) {
            releaseSlot(s, node.slot);
        } else {
            *keep++ = node;
        }
    }
    s.heap.erase(keep, s.heap.end());
    s.cancelled_heap = 0;
    std::make_heap(s.heap.begin(), s.heap.end(), Later{});
    ++s.compactions;
}

const EventQueue::HeapNode *
EventQueue::shardFront(const Shard &s, bool &from_staged) const
{
    const HeapNode *staged = s.staged_pos < s.staged.size()
                                 ? &s.staged[s.staged_pos]
                                 : nullptr;
    const HeapNode *top = s.heap.empty() ? nullptr : &s.heap.front();
    if (staged && (!top || earlier(*staged, *top))) {
        from_staged = true;
        return staged;
    }
    from_staged = false;
    return top;
}

void
EventQueue::popFront(Shard &s, bool from_staged)
{
    if (from_staged) {
        ++s.staged_pos;
        return;
    }
    std::pop_heap(s.heap.begin(), s.heap.end(), Later{});
    s.heap.pop_back();
}

int
EventQueue::pickMinShard(bool &from_staged) const
{
    int best = -1;
    bool best_staged = false;
    const HeapNode *best_node = nullptr;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        bool st;
        const HeapNode *n = shardFront(shards_[i], st);
        if (n && (!best_node || earlier(*n, *best_node))) {
            best = static_cast<int>(i);
            best_staged = st;
            best_node = n;
        }
    }
    from_staged = best_staged;
    return best;
}

bool
EventQueue::step()
{
    for (;;) {
        bool from_staged;
        const int si = pickMinShard(from_staged);
        if (si < 0)
            return false;
        Shard &s = shards_[si];
        bool st;
        const HeapNode node = *shardFront(s, st);
        popFront(s, from_staged);
        Entry &e = entry(s, node.slot);
        if (e.cancelled) {
            if (from_staged)
                --s.cancelled_staged;
            else
                --s.cancelled_heap;
            releaseSlot(s, node.slot);
            continue;
        }
        XFM_ASSERT(node.when >= now_, "event queue time went backwards");
        now_ = node.when;
        EventCallback cb = std::move(e.cb);
        // Release before invoking so a callback that reschedules
        // sees the slot free and a self-deschedule returns false —
        // the same contract as the old erase-before-call kernel.
        releaseSlot(s, node.slot);
        cb();
        ++executed_;
        ++s.executed;
        return true;
    }
}

std::uint64_t
EventQueue::runMonolithic(Tick limit)
{
    // The exact legacy single-queue loop: no windows, no barrier.
    Shard &s = shards_[0];
    std::uint64_t n = 0;
    while (!s.heap.empty()) {
        const HeapNode &top = s.heap.front();
        if (entry(s, top.slot).cancelled) {
            const std::uint32_t slot = top.slot;
            std::pop_heap(s.heap.begin(), s.heap.end(), Later{});
            s.heap.pop_back();
            --s.cancelled_heap;
            releaseSlot(s, slot);
            continue;
        }
        if (top.when > limit)
            break;
        if (step())
            ++n;
    }
    return n;
}

Tick
EventQueue::windowEnd(Tick t, Tick limit) const
{
    const Tick cap = limit == maxTick ? maxTick : limit + 1;
    if (window_ticks_ == 0)
        return cap;
    const Tick next = (t / window_ticks_ + 1) * window_ticks_;
    if (next < t)  // multiplication wrapped near maxTick
        return cap;
    return std::min(next, cap);
}

void
EventQueue::stageShard(Shard &s, Tick window_end)
{
    // Shard-local heap extraction: pops every in-window node into
    // an ordered batch and sweeps tombstones met along the way.
    // Touches only this shard's state, so the drain pool may run
    // all shards concurrently; callbacks are neither moved nor run
    // here, and staged entries stay live for deschedule().
    s.staged.clear();
    s.staged_pos = 0;
    while (!s.heap.empty() && s.heap.front().when < window_end) {
        const HeapNode node = s.heap.front();
        std::pop_heap(s.heap.begin(), s.heap.end(), Later{});
        s.heap.pop_back();
        Entry &e = entry(s, node.slot);
        if (e.cancelled) {
            --s.cancelled_heap;
            releaseSlot(s, node.slot);
            continue;
        }
        e.staged = true;
        s.staged.push_back(node);
    }
}

void
EventQueue::maybeParallelStage(Tick window_end)
{
    if (!pool_ || pending() < parallel_stage_min_)
        return;
    pool_->parallelFor(shards_.size(), [this, window_end](std::size_t i) {
        stageShard(shards_[i], window_end);
    });
    for (const Shard &s : shards_)
        staged_events_ += s.staged.size();
}

std::uint64_t
EventQueue::drainWindow(Tick window_end)
{
    // Commit in global (tick, priority, seq) order across staged
    // batches and live heap tops. Staged nodes are all < window_end
    // and newly scheduled events land on the heaps, so the merge is
    // exactly the monolithic fire order.
    std::uint64_t n = 0;
    for (;;) {
        bool from_staged;
        const int si = pickMinShard(from_staged);
        if (si < 0)
            break;
        Shard &s = shards_[si];
        bool st;
        const HeapNode node = *shardFront(s, st);
        Entry &e = entry(s, node.slot);
        if (e.cancelled) {
            popFront(s, from_staged);
            if (from_staged)
                --s.cancelled_staged;
            else
                --s.cancelled_heap;
            releaseSlot(s, node.slot);
            continue;
        }
        if (node.when >= window_end)
            break;
        popFront(s, from_staged);
        XFM_ASSERT(node.when >= now_, "event queue time went backwards");
        now_ = node.when;
        EventCallback cb = std::move(e.cb);
        releaseSlot(s, node.slot);
        cb();
        ++executed_;
        ++s.executed;
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    if (shards_.size() == 1)
        return runMonolithic(limit);

    XFM_ASSERT(!draining_, "EventQueue::run is not reentrant");
    draining_ = true;
    std::uint64_t n = 0;
    for (;;) {
        // Find the next live event, reaping tombstone fronts on the
        // way (the legacy loop also reaps tombstones past the
        // limit).
        bool from_staged;
        int si = pickMinShard(from_staged);
        Tick next_live = maxTick;
        bool have_live = false;
        while (si >= 0) {
            Shard &s = shards_[si];
            bool st;
            const HeapNode node = *shardFront(s, st);
            Entry &e = entry(s, node.slot);
            if (!e.cancelled) {
                next_live = node.when;
                have_live = true;
                break;
            }
            popFront(s, from_staged);
            if (from_staged)
                --s.cancelled_staged;
            else
                --s.cancelled_heap;
            releaseSlot(s, node.slot);
            si = pickMinShard(from_staged);
        }
        if (!have_live || next_live > limit)
            break;

        const Tick wend = windowEnd(next_live, limit);
        ++barriers_;
        maybeParallelStage(wend);
        n += drainWindow(wend);
    }
    draining_ = false;
    return n;
}

std::size_t
EventQueue::pending() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_) {
        n += s.heap.size() - s.cancelled_heap;
        n += (s.staged.size() - s.staged_pos) - s.cancelled_staged;
    }
    return n;
}

std::size_t
EventQueue::slots() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_)
        n += s.slot_count;
    return n;
}

std::uint64_t
EventQueue::compactions() const
{
    std::uint64_t n = 0;
    for (const Shard &s : shards_)
        n += s.compactions;
    return n;
}

std::uint64_t
EventQueue::shardCompactions(std::size_t s) const
{
    return shards_.at(s).compactions;
}

std::size_t
EventQueue::shardCancelled(std::size_t s) const
{
    const Shard &sh = shards_.at(s);
    return sh.cancelled_heap + sh.cancelled_staged;
}

std::size_t
EventQueue::shardPending(std::size_t s) const
{
    const Shard &sh = shards_.at(s);
    return sh.heap.size() - sh.cancelled_heap
        + (sh.staged.size() - sh.staged_pos) - sh.cancelled_staged;
}

std::uint64_t
EventQueue::shardExecuted(std::size_t s) const
{
    return shards_.at(s).executed;
}

} // namespace xfm
