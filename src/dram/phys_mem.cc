#include "phys_mem.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace xfm
{
namespace dram
{

Bytes
PhysMem::read(std::uint64_t addr, std::size_t size) const
{
    Bytes out;
    read(addr, size, out);
    return out;
}

void
PhysMem::read(std::uint64_t addr, std::size_t size, Bytes &out) const
{
    XFM_ASSERT(addr + size <= capacity_, "read past capacity: addr=",
               addr, " size=", size);
    out.assign(size, 0);
    std::size_t done = 0;
    while (done < size) {
        const std::uint64_t cur = addr + done;
        const std::uint64_t frame = cur / frameBytes;
        const std::uint64_t off = cur % frameBytes;
        const std::size_t chunk = std::min<std::size_t>(
            size - done, static_cast<std::size_t>(frameBytes - off));
        auto it = frames_.find(frame);
        if (it != frames_.end())
            std::memcpy(out.data() + done, it->second.data() + off,
                        chunk);
        done += chunk;
    }
}

void
PhysMem::write(std::uint64_t addr, ByteSpan data)
{
    XFM_ASSERT(addr + data.size() <= capacity_,
               "write past capacity: addr=", addr, " size=",
               data.size());
    std::size_t done = 0;
    while (done < data.size()) {
        const std::uint64_t cur = addr + done;
        const std::uint64_t frame = cur / frameBytes;
        const std::uint64_t off = cur % frameBytes;
        const std::size_t chunk = std::min<std::size_t>(
            data.size() - done,
            static_cast<std::size_t>(frameBytes - off));
        auto &buf = frames_[frame];
        if (buf.empty())
            buf.assign(frameBytes, 0);
        std::memcpy(buf.data() + off, data.data() + done, chunk);
        done += chunk;
    }
}

void
PhysMem::fill(std::uint64_t addr, std::size_t size, std::uint8_t value)
{
    Bytes data(size, value);
    write(addr, data);
}

} // namespace dram
} // namespace xfm
