#include "ddr_config.hh"

#include "common/config.hh"
#include "common/logging.hh"

namespace xfm
{
namespace dram
{

const char *
refreshModeName(RefreshMode m)
{
    switch (m) {
      case RefreshMode::RefAb: return "refab";
      case RefreshMode::RefPb: return "refpb";
    }
    return "unknown";
}

DeviceConfig
ddr5Device8Gb()
{
    DeviceConfig c;
    c.name = "DDR5-3200 8Gb";
    c.generation = DdrGeneration::Ddr5;
    c.capacityBits = std::uint64_t(8) << 30;
    c.banksPerChip = 16;
    c.rowsPerBank = 64 * 1024;
    c.subarraysPerBank = 128;
    c.rowBytesPerChip = 1024;
    c.rowsPerRefresh = 8;
    c.tRFC = nanoseconds(195.0);
    return c;
}

DeviceConfig
ddr5Device16Gb()
{
    DeviceConfig c;
    c.name = "DDR5-3200 16Gb";
    c.generation = DdrGeneration::Ddr5;
    c.capacityBits = std::uint64_t(16) << 30;
    c.banksPerChip = 32;
    c.rowsPerBank = 64 * 1024;
    c.subarraysPerBank = 128;
    c.rowBytesPerChip = 1024;
    c.rowsPerRefresh = 8;
    c.tRFC = nanoseconds(295.0);
    return c;
}

DeviceConfig
ddr5Device32Gb()
{
    DeviceConfig c;
    c.name = "DDR5-3200 32Gb";
    c.generation = DdrGeneration::Ddr5;
    c.capacityBits = std::uint64_t(32) << 30;
    c.banksPerChip = 32;
    c.rowsPerBank = 128 * 1024;
    c.subarraysPerBank = 256;
    c.rowBytesPerChip = 1024;
    c.rowsPerRefresh = 16;
    c.tRFC = nanoseconds(410.0);
    return c;
}

DeviceConfig
ddr4Device8Gb2400()
{
    DeviceConfig c;
    c.name = "DDR4-2400 8Gb";
    c.generation = DdrGeneration::Ddr4;
    c.capacityBits = std::uint64_t(8) << 30;
    c.banksPerChip = 16;
    c.rowsPerBank = 64 * 1024;
    c.subarraysPerBank = 128;
    c.rowBytesPerChip = 1024;
    c.rowsPerRefresh = 8;
    c.tCK = 833;  // 2400 MT/s
    c.tRCD = nanoseconds(14.16);
    c.tCL = nanoseconds(14.16);
    c.tRP = nanoseconds(14.16);
    c.tRC = nanoseconds(46.0);
    c.tRFC = nanoseconds(350.0);
    c.tBURST = picoseconds(3333);  // BL8 at 2400 MT/s
    return c;
}

std::uint32_t
maxAccessesPerTrfc(const DeviceConfig &dev)
{
    const Tick first = dev.tRCD + dev.tCL + 32 * dev.tBURST;
    if (dev.tRFC < first)
        return 0;
    const Tick per_access = 32 * dev.tBURST;
    return 1 + static_cast<std::uint32_t>((dev.tRFC - first)
                                          / per_access);
}

std::uint32_t
maxAccessesPerWindowOf(const DeviceConfig &dev, Tick window)
{
    const Tick first = dev.tRCD + dev.tCL + 32 * dev.tBURST;
    if (window < first)
        return 0;
    const Tick per_access = 32 * dev.tBURST;
    return 1 + static_cast<std::uint32_t>((window - first)
                                          / per_access);
}

void
applyRefreshConfig(DeviceConfig &dev, const Config &cfg)
{
    const std::string mode =
        cfg.getString("refresh.mode",
                      refreshModeName(dev.refreshMode));
    if (mode == "refab")
        dev.refreshMode = RefreshMode::RefAb;
    else if (mode == "refpb")
        dev.refreshMode = RefreshMode::RefPb;
    else
        fatal("refresh.mode must be 'refab' or 'refpb', got '", mode,
              "'");
    dev.hira = cfg.getBool("refresh.hira", dev.hira);
    dev.tRFCpb = nanoseconds(
        cfg.getDouble("refresh.trfcpb_ns",
                      static_cast<double>(dev.tRFCpb)
                          / nanoseconds(1.0)));
    dev.rfmRaaimt = static_cast<std::uint32_t>(
        cfg.getU64("rfm.raaimt", dev.rfmRaaimt));
    dev.rfmRaammt = static_cast<std::uint32_t>(
        cfg.getU64("rfm.raammt", dev.rfmRaammt));
    dev.tRFM = nanoseconds(
        cfg.getDouble("rfm.trfm_ns",
                      static_cast<double>(dev.tRFM)
                          / nanoseconds(1.0)));
}

Tick
accessCompletionOffset(const DeviceConfig &dev, std::uint32_t k)
{
    return dev.tRCD + dev.tCL
        + static_cast<Tick>(k + 1) * 32 * dev.tBURST;
}

MemSystemConfig
defaultMemSystem()
{
    MemSystemConfig cfg;
    cfg.rank.device = ddr5Device16Gb();
    cfg.channels = 4;
    cfg.dimmsPerChannel = 2;
    cfg.ranksPerDimm = 1;
    return cfg;
}

} // namespace dram
} // namespace xfm
