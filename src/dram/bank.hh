/**
 * @file
 * DRAM bank model with SALP-style subarray support (paper Fig. 7).
 *
 * A bank is a collection of subarrays, each with its own local row
 * buffer. Stock DRAM allows one activated row per bank; the XFM
 * modification adds, per subarray, a row-decoder latch and a
 * local-bitline isolation latch so that while some rows are being
 * refreshed, *one other subarray* can be activated and accessed
 * through the shared global bitlines.
 *
 * This model enforces the structural rules the paper's random
 * accesses must respect:
 *  - a random access may not target a subarray that is busy
 *    refreshing a row in the same tRFC window (local row buffer is
 *    occupied by the refresh);
 *  - only one subarray can drive the global bitlines at a time, so
 *    at most one non-refresh row can be open per bank.
 */

#ifndef XFM_DRAM_BANK_HH
#define XFM_DRAM_BANK_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "dram/ddr_config.hh"

namespace xfm
{
namespace dram
{

/** Result of attempting an access against the bank state. */
enum class BankAccessResult
{
    Ok,                ///< access legal, state updated
    SubarrayBusy,      ///< target subarray is refreshing this window
    GlobalBitlineBusy, ///< another subarray already drives the GBL
};

/**
 * One DRAM bank with per-subarray state.
 */
class Bank
{
  public:
    explicit Bank(const DeviceConfig &dev);

    /**
     * Begin an all-bank-refresh slice for this bank: rows
     * [first_row, first_row + count) (wrapping) are refreshed, each
     * in its own subarray's local row buffer.
     */
    void beginRefresh(std::uint32_t first_row, std::uint32_t count);

    /** End the refresh window; refreshed subarrays precharge. */
    void endRefresh();

    /**
     * Attempt a *conditional* access: legal only while the row is
     * part of the current refresh set (its row buffer already holds
     * the row).
     */
    BankAccessResult accessConditional(std::uint32_t row);

    /**
     * Attempt a *random* (SALP) access to a row outside the refresh
     * set. Requires the row's subarray to be idle and the global
     * bitlines to be free; on success the subarray is held open
     * until releaseRandom().
     */
    BankAccessResult accessRandom(std::uint32_t row);

    /** Close the row opened by a successful accessRandom(). */
    void releaseRandom();

    /** True while inside a refresh window. */
    bool refreshing() const { return refreshing_; }

    /** True if @p row is in the current refresh set. */
    bool rowInRefreshSet(std::uint32_t row) const;

    /** Subarray index of @p row. */
    std::uint32_t
    subarrayOf(std::uint32_t row) const
    {
        return row / rows_per_subarray_;
    }

    std::uint32_t subarrays() const { return subarrays_; }

    /** Structural-hazard counters. */
    std::uint64_t subarrayConflicts() const
    {
        return subarray_conflicts_.value();
    }
    std::uint64_t bitlineConflicts() const
    {
        return bitline_conflicts_.value();
    }

  private:
    std::uint32_t rows_per_bank_;
    std::uint32_t rows_per_subarray_;
    std::uint32_t subarrays_;

    bool refreshing_ = false;
    std::uint32_t refresh_first_ = 0;
    std::uint32_t refresh_count_ = 0;

    /** Subarray currently opened for a random access, or -1. */
    std::int64_t random_open_subarray_ = -1;

    stats::Counter subarray_conflicts_;
    stats::Counter bitline_conflicts_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_BANK_HH
