/**
 * @file
 * Cycle-approximate DDR memory controller.
 *
 * Models per-channel data-bus occupancy, open-row (page hit/miss)
 * timing, and stalls caused by all-bank refresh locks — the three
 * effects that matter for the paper's bandwidth-interference
 * results. Requests are scheduled FR-FCFS per channel (row hits
 * bypass older misses within a bounded window) with an open-page
 * policy, in the spirit of gem5's DRAM interface that the paper's
 * emulator builds on.
 */

#ifndef XFM_DRAM_MEM_CTRL_HH
#define XFM_DRAM_MEM_CTRL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "dram/address_map.hh"
#include "dram/ddr_config.hh"
#include "dram/refresh.hh"
#include "obs/registry.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace dram
{

/** One CPU-side DRAM access. */
struct MemRequest
{
    std::uint64_t addr = 0;
    std::uint32_t size = 64;
    bool isWrite = false;
    /** Invoked when the data transfer completes. */
    std::function<void(Tick)> onComplete;
};

/** Aggregate controller statistics. */
struct MemCtrlStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t frfcfsBypasses = 0;  ///< row hits served out of order
    Tick busyTicks = 0;         ///< data-bus occupancy, all channels
    Tick refreshStallTicks = 0; ///< time requests waited on tRFC locks
    Tick extLockStallTicks = 0; ///< time waited on NMA rank lockouts
    Tick queueTicks = 0;        ///< total queueing delay

    double
    rowHitRate() const
    {
        const auto total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

/**
 * Memory controller for a complete multi-channel memory system.
 *
 * Large requests are split internally at channel-interleave
 * granularity so a 4 KiB page access exercises all channels, as in
 * Fig. 6a.
 */
class MemCtrl : public SimObject
{
  public:
    MemCtrl(std::string name, EventQueue &eq,
            const MemSystemConfig &cfg, RefreshController *refresh);

    /**
     * Submit an access of arbitrary size; it is split into
     * channel-local chunks and completes when the last chunk does.
     */
    void submit(MemRequest req);

    const MemCtrlStats &stats() const { return stats_; }

    /** Register controller metrics under `<name()>.*`. */
    void registerMetrics(obs::MetricRegistry &r);
    const AddressMap &addressMap() const { return map_; }
    const MemSystemConfig &config() const { return cfg_; }

    /**
     * Lock a rank against host access until @p until — the
     * interface a Host-Lockout-style NMA uses to claim the rank for
     * the duration of an offload (contrast with XFM, which needs no
     * such lock).
     */
    void lockRank(std::uint32_t channel, std::uint32_t rank,
                  Tick until);

    /** Average data-bus utilisation across channels in [0, 1]. */
    double busFraction(Tick elapsed) const;

    /** Pending requests over all channel queues. */
    std::size_t pendingRequests() const;

    /** How far FR-FCFS may look past the queue head for a row hit. */
    static constexpr std::size_t frfcfsWindow = 16;

  private:
    struct Chunk
    {
        std::uint64_t addr;
        std::uint32_t size;
        bool isWrite;
        Tick enqueued;
        /** Decremented on the parent; fires onComplete at zero. */
        std::shared_ptr<std::pair<std::uint32_t,
                                  std::function<void(Tick)>>> parent;
    };

    void pump(std::uint32_t channel);
    Tick serviceChunk(const Chunk &chunk, Tick start);

    MemSystemConfig cfg_;
    AddressMap map_;
    RefreshController *refresh_;

    std::vector<std::deque<Chunk>> queues_;     ///< per channel
    std::vector<Tick> busy_until_;              ///< per channel
    std::vector<bool> pump_scheduled_;          ///< per channel
    /** Open row per (channel, rank, bank); -1 when precharged. */
    std::vector<std::int64_t> open_row_;
    /** External (NMA lockout) lock end per (channel, rank). */
    std::vector<Tick> ext_lock_until_;

    MemCtrlStats stats_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_MEM_CTRL_HH
