/**
 * @file
 * SECDED error correction for DRAM (paper Sec. 4.1).
 *
 * Commodity ECC DIMMs protect each 64-bit word with 8 parity bits
 * (single-error-correct, double-error-detect, a 72,64 Hamming code
 * with overall parity). The memory controller normally computes the
 * check bits; because XFM's NMA writes DRAM behind the controller's
 * back, the NMA must regenerate the side-band parity on every
 * write-back so later CPU reads still verify (Sec. 4.1).
 *
 * EccStore wraps a PhysMem region with parity maintenance and
 * fault-injection hooks for testing the correction paths.
 */

#ifndef XFM_DRAM_ECC_HH
#define XFM_DRAM_ECC_HH

#include <cstdint>
#include <functional>
#include <set>

#include "common/stats.hh"
#include "dram/phys_mem.hh"
#include "fault/fault.hh"
#include "obs/registry.hh"

namespace xfm
{
namespace dram
{
namespace ecc
{

/** Outcome of checking one 64-bit word. */
enum class CheckResult
{
    Ok,            ///< syndrome clean
    Corrected,     ///< single-bit error fixed
    Uncorrectable, ///< double-bit error detected
};

/**
 * Compute the 8 SECDED check bits for a 64-bit word
 * (Hamming(71,64) + overall parity).
 */
std::uint8_t encode(std::uint64_t word);

/**
 * Verify and possibly correct a word in place.
 *
 * @param word data word (may be corrected).
 * @param check stored check bits (may be corrected).
 */
CheckResult checkAndCorrect(std::uint64_t &word, std::uint8_t &check);

} // namespace ecc

/** Statistics of an ECC-protected region. */
struct EccStats
{
    std::uint64_t wordsWritten = 0;
    std::uint64_t wordsRead = 0;
    std::uint64_t correctedErrors = 0;
    std::uint64_t uncorrectableErrors = 0;
    std::uint64_t parityBytesWritten = 0;
};

/**
 * A side-band-ECC view over physical memory.
 *
 * Data lives at its normal addresses; check bytes live in a
 * dedicated parity region (the "ECC chips"), one byte per 64-bit
 * word. All accesses must be 8-byte aligned multiples.
 */
class EccStore
{
  public:
    /**
     * @param mem backing memory.
     * @param parity_base base of the parity region; must hold
     *        (protected bytes / 8) bytes.
     * @param protected_bytes size of the protected address space.
     */
    EccStore(PhysMem &mem, std::uint64_t parity_base,
             std::uint64_t protected_bytes);

    /** Write data and regenerate its parity (what the NMA does). */
    void write(std::uint64_t addr, ByteSpan data);

    /**
     * Read with verification; single-bit errors are corrected in
     * the returned data *and* scrubbed in memory.
     *
     * Uncorrectable (double-bit) errors are fatal unless a poison
     * handler is installed; with one, the word is recorded as
     * poisoned, the handler is notified, and the (corrupt) data is
     * returned so the caller can quarantine the containing page.
     *
     * @throws FatalError on an uncorrectable error with no handler.
     */
    Bytes read(std::uint64_t addr, std::size_t size);

    /** Flip one bit of stored data (fault injection for tests). */
    void injectDataError(std::uint64_t addr, unsigned bit);

    /** Flip one stored parity bit (fault injection). */
    void injectParityError(std::uint64_t word_addr, unsigned bit);

    /**
     * Attach a fault injector (may be null to detach). Each word
     * read then evaluates EccCorrectable (one stored data bit flips
     * before the check — always recovered and scrubbed) and
     * EccUncorrectable (two bits flip — detected, never corrected).
     */
    void setFaultInjector(fault::FaultInjector *inj)
    {
        injector_ = inj;
    }

    /**
     * Install the machine-check-style handler for uncorrectable
     * errors: read() reports the poisoned word address instead of
     * terminating, mirroring how a kernel quarantines the
     * containing page rather than panicking on user-memory UEs.
     */
    void setPoisonHandler(std::function<void(std::uint64_t)> handler)
    {
        poison_handler_ = std::move(handler);
    }

    /** True if any word of [addr, addr+size) is poisoned. */
    bool isPoisoned(std::uint64_t addr, std::size_t size) const;

    /** Number of currently poisoned words. */
    std::size_t poisonedWords() const { return poisoned_.size(); }

    /** Clear poison for a word (page retired / slot rewritten). */
    void clearPoison(std::uint64_t word_addr)
    {
        poisoned_.erase(word_addr & ~std::uint64_t(7));
    }

    const EccStats &stats() const { return stats_; }

    /** Register ECC metrics under `<prefix>.*`. */
    void
    registerMetrics(obs::MetricRegistry &r, const std::string &prefix)
    {
        const std::string p = prefix + ".";
        r.counter(p + "wordsWritten", &stats_.wordsWritten);
        r.counter(p + "wordsRead", &stats_.wordsRead);
        r.counter(p + "correctedErrors", &stats_.correctedErrors);
        r.counter(p + "uncorrectableErrors",
                  &stats_.uncorrectableErrors);
        r.counter(p + "parityBytesWritten",
                  &stats_.parityBytesWritten);
        r.derived(p + "poisonedWords",
                  [this] {
                      return static_cast<double>(poisonedWords());
                  });
    }

  private:
    std::uint64_t parityAddr(std::uint64_t addr) const;

    PhysMem &mem_;
    std::uint64_t parity_base_;
    std::uint64_t protected_bytes_;
    fault::FaultInjector *injector_ = nullptr;
    std::function<void(std::uint64_t)> poison_handler_;
    std::set<std::uint64_t> poisoned_;  ///< poisoned word addresses
    EccStats stats_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_ECC_HH
