/**
 * @file
 * Skylake-style physical address mapping.
 *
 * Physical addresses interleave across channels at 256 B and across
 * a bank pair at 128 B (DRAMA-reported Intel Skylake mapping), so a
 * 4 KiB page spreads over four channels and two banks, occupying
 * the same row in both banks of the pair — the layout Fig. 6a of
 * the paper assumes.
 */

#ifndef XFM_DRAM_ADDRESS_MAP_HH
#define XFM_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "dram/ddr_config.hh"

namespace xfm
{
namespace dram
{

/** Fully decoded DRAM coordinates of a physical byte address. */
struct DramCoord
{
    std::uint32_t channel;
    std::uint32_t rank;      ///< rank index within the channel
    std::uint32_t bank;
    std::uint32_t row;
    std::uint32_t column;    ///< 128 B stripe index within the row
    std::uint32_t offset;    ///< byte offset within the stripe

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank
            && row == o.row && column == o.column && offset == o.offset;
    }
};

/**
 * Bidirectional physical-address <-> DRAM-coordinate mapping.
 *
 * The decode order (LSB first) is: byte-in-stripe, bank LSB,
 * column, bank group, rank, row; the channel bits sit at the
 * channel-interleave boundary below all of these.
 */
class AddressMap
{
  public:
    explicit AddressMap(const MemSystemConfig &cfg);

    /** Decode a physical byte address. */
    DramCoord decode(std::uint64_t addr) const;

    /** Inverse of decode(). */
    std::uint64_t encode(const DramCoord &coord) const;

    /** Subarray that holds @p row. */
    std::uint32_t
    subarrayOf(std::uint32_t row) const
    {
        return row / rows_per_subarray_;
    }

    /** Total mapped capacity in bytes. */
    std::uint64_t capacityBytes() const { return capacity_; }

    std::uint32_t channels() const { return channels_; }
    std::uint32_t ranksPerChannel() const { return ranks_per_channel_; }
    std::uint32_t banksPerRank() const { return banks_; }
    std::uint32_t rowsPerBank() const { return rows_per_bank_; }

    /** 128 B stripes per row (row bytes / bank interleave). */
    std::uint32_t stripesPerRow() const { return stripes_per_row_; }

  private:
    std::uint32_t channels_;
    std::uint32_t ranks_per_channel_;
    std::uint32_t banks_;
    std::uint32_t rows_per_bank_;
    std::uint32_t rows_per_subarray_;
    std::uint32_t channel_interleave_;
    std::uint32_t bank_interleave_;
    std::uint32_t stripes_per_row_;
    std::uint64_t capacity_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_ADDRESS_MAP_HH
