#include "ecc.hh"

#include <array>
#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace xfm
{
namespace dram
{
namespace ecc
{

namespace
{

constexpr unsigned codeBits = 71;  // 64 data + 7 Hamming checks

constexpr bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Hamming position (1..71) of each data bit (0..63). */
constexpr std::array<std::uint8_t, 64>
dataPositions()
{
    std::array<std::uint8_t, 64> pos{};
    unsigned p = 1;
    for (unsigned d = 0; d < 64; ++d) {
        while (isPowerOfTwo(p))
            ++p;
        pos[d] = static_cast<std::uint8_t>(p++);
    }
    return pos;
}

constexpr auto dataPos = dataPositions();

/** Syndrome contribution (XOR of positions) of the data bits. */
std::uint8_t
dataSyndrome(std::uint64_t word)
{
    std::uint8_t s = 0;
    std::uint64_t w = word;
    while (w) {
        const int d = std::countr_zero(w);
        s ^= dataPos[d];
        w &= w - 1;
    }
    return s;
}

} // namespace

std::uint8_t
encode(std::uint64_t word)
{
    // Check bit i (at Hamming position 2^i) equals the parity of
    // data positions whose index has bit i set; the data syndrome
    // delivers all seven at once.
    const std::uint8_t checks = dataSyndrome(word) & 0x7F;
    // Overall parity over data + the 7 check bits (even parity).
    const unsigned ones = std::popcount(word)
        + std::popcount(static_cast<unsigned>(checks));
    const std::uint8_t overall =
        static_cast<std::uint8_t>(ones & 1);
    return static_cast<std::uint8_t>(checks | (overall << 7));
}

CheckResult
checkAndCorrect(std::uint64_t &word, std::uint8_t &check)
{
    const std::uint8_t stored_checks = check & 0x7F;
    const std::uint8_t stored_overall =
        static_cast<std::uint8_t>(check >> 7);

    // Syndrome: XOR of data contribution and stored check bits
    // (each check bit sits at position 2^i, contributing 2^i).
    const std::uint8_t syndrome =
        static_cast<std::uint8_t>(dataSyndrome(word)
                                  ^ stored_checks);
    const unsigned ones = std::popcount(word)
        + std::popcount(static_cast<unsigned>(stored_checks))
        + stored_overall;
    const bool parity_bad = (ones & 1) != 0;

    if (syndrome == 0 && !parity_bad)
        return CheckResult::Ok;

    if (syndrome == 0 && parity_bad) {
        // The overall parity bit itself flipped.
        check ^= 0x80;
        return CheckResult::Corrected;
    }
    if (!parity_bad) {
        // Non-zero syndrome with clean overall parity: two flips.
        return CheckResult::Uncorrectable;
    }
    // Single-bit error at Hamming position `syndrome`.
    if (syndrome > codeBits)
        return CheckResult::Uncorrectable;
    if (isPowerOfTwo(syndrome)) {
        // A check bit flipped.
        const auto bit = static_cast<std::uint8_t>(
            std::countr_zero(static_cast<unsigned>(syndrome)));
        check ^= static_cast<std::uint8_t>(1u << bit);
        return CheckResult::Corrected;
    }
    // A data bit flipped: find which one.
    for (unsigned d = 0; d < 64; ++d) {
        if (dataPos[d] == syndrome) {
            word ^= std::uint64_t(1) << d;
            return CheckResult::Corrected;
        }
    }
    return CheckResult::Uncorrectable;
}

} // namespace ecc

EccStore::EccStore(PhysMem &mem, std::uint64_t parity_base,
                   std::uint64_t protected_bytes)
    : mem_(mem), parity_base_(parity_base),
      protected_bytes_(protected_bytes)
{
    XFM_ASSERT(protected_bytes_ % 8 == 0,
               "protected region must be word-aligned");
    // Protected data occupies [0, protected_bytes); the parity
    // region must sit entirely above it.
    XFM_ASSERT(parity_base_ >= protected_bytes_,
               "parity region overlaps protected data");
    XFM_ASSERT(parity_base_ + protected_bytes_ / 8
                   <= mem_.capacityBytes(),
               "parity region beyond memory");
}

std::uint64_t
EccStore::parityAddr(std::uint64_t addr) const
{
    return parity_base_ + addr / 8;
}

void
EccStore::write(std::uint64_t addr, ByteSpan data)
{
    XFM_ASSERT(addr % 8 == 0 && data.size() % 8 == 0,
               "ECC writes must be 8-byte aligned");
    XFM_ASSERT(addr + data.size() <= protected_bytes_,
               "write beyond protected region");
    mem_.write(addr, data);

    Bytes parity(data.size() / 8);
    for (std::size_t w = 0; w < parity.size(); ++w) {
        std::uint64_t word;
        std::memcpy(&word, data.data() + w * 8, 8);
        parity[w] = ecc::encode(word);
    }
    mem_.write(parityAddr(addr), parity);
    stats_.wordsWritten += parity.size();
    stats_.parityBytesWritten += parity.size();
}

Bytes
EccStore::read(std::uint64_t addr, std::size_t size)
{
    XFM_ASSERT(addr % 8 == 0 && size % 8 == 0,
               "ECC reads must be 8-byte aligned");
    Bytes data = mem_.read(addr, size);
    Bytes parity = mem_.read(parityAddr(addr), size / 8);

    bool scrub = false;
    for (std::size_t w = 0; w < parity.size(); ++w) {
        std::uint64_t word;
        std::memcpy(&word, data.data() + w * 8, 8);
        std::uint8_t check = parity[w];

        if (injector_ && injector_->armed()) {
            // Model in-DRAM bit rot discovered at read time: flip
            // stored data bits before the SECDED check sees them.
            if (injector_->shouldInject(
                    fault::FaultSite::EccCorrectable)) {
                word ^= std::uint64_t(1)
                    << injector_->pickUniform(64);
            }
            if (injector_->shouldInject(
                    fault::FaultSite::EccUncorrectable)) {
                const auto b1 = injector_->pickUniform(64);
                const auto b2 = (b1 + 1 + injector_->pickUniform(63))
                    % 64;
                word ^= std::uint64_t(1) << b1;
                word ^= std::uint64_t(1) << b2;
            }
        }

        const auto result = ecc::checkAndCorrect(word, check);
        ++stats_.wordsRead;
        switch (result) {
          case ecc::CheckResult::Ok:
            break;
          case ecc::CheckResult::Corrected:
            ++stats_.correctedErrors;
            std::memcpy(data.data() + w * 8, &word, 8);
            parity[w] = check;
            scrub = true;
            break;
          case ecc::CheckResult::Uncorrectable:
            ++stats_.uncorrectableErrors;
            if (!poison_handler_)
                fatal("uncorrectable ECC error at address ",
                      addr + w * 8);
            // Machine-check path: record the poisoned word, tell
            // the owner, hand back the (corrupt) data untouched.
            std::memcpy(data.data() + w * 8, &word, 8);
            poisoned_.insert(addr + w * 8);
            poison_handler_(addr + w * 8);
            break;
        }
    }
    if (scrub) {
        // Write the corrected word(s) back (patrol-scrub style).
        mem_.write(addr, data);
        mem_.write(parityAddr(addr), parity);
    }
    return data;
}

bool
EccStore::isPoisoned(std::uint64_t addr, std::size_t size) const
{
    if (poisoned_.empty())
        return false;
    const std::uint64_t first = addr & ~std::uint64_t(7);
    const auto it = poisoned_.lower_bound(first);
    return it != poisoned_.end() && *it < addr + size;
}

void
EccStore::injectDataError(std::uint64_t addr, unsigned bit)
{
    XFM_ASSERT(bit < 64, "bit index out of range");
    const std::uint64_t word_addr = addr & ~std::uint64_t(7);
    Bytes word = mem_.read(word_addr, 8);
    word[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    mem_.write(word_addr, word);
}

void
EccStore::injectParityError(std::uint64_t word_addr, unsigned bit)
{
    XFM_ASSERT(bit < 8, "parity bit index out of range");
    Bytes p = mem_.read(parityAddr(word_addr), 1);
    p[0] ^= static_cast<std::uint8_t>(1u << bit);
    mem_.write(parityAddr(word_addr), p);
}

} // namespace dram
} // namespace xfm
