#include "refresh.hh"

#include "common/logging.hh"

namespace xfm
{
namespace dram
{

bool
RefreshWindow::coversRow(std::uint32_t row,
                         std::uint32_t rows_per_bank) const
{
    // The refreshed range may wrap at the end of the bank.
    const std::uint32_t rel =
        (row + rows_per_bank - firstRow) % rows_per_bank;
    return rel < rowCount;
}

RefreshController::RefreshController(std::string name, EventQueue &eq,
                                     const DeviceConfig &dev,
                                     std::uint32_t num_ranks)
    : SimObject(std::move(name), eq), dev_(dev), num_ranks_(num_ranks),
      refresh_counter_(num_ranks, 0),
      window_start_(num_ranks, maxTick)
{
    XFM_ASSERT(num_ranks_ > 0, "need at least one rank");
    XFM_ASSERT(dev_.tRFC < dev_.tREFI(),
               "tRFC must be shorter than tREFI");
}

void
RefreshController::start()
{
    if (started_)
        return;
    started_ = true;
    // Stagger REF commands across ranks within one tREFI.
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
        const Tick phase = dev_.tREFI()
            * static_cast<std::uint64_t>(r) / num_ranks_;
        eventq().schedule(curTick() + phase,
                          [this, r] { issueRef(r); },
                          EventQueue::refreshPriority,
                          rankDomain(r));
    }
}

void
RefreshController::addListener(RefreshListener listener)
{
    listeners_.push_back(std::move(listener));
}

void
RefreshController::issueRef(std::uint32_t rank)
{
    ++refs_issued_;
    window_start_[rank] = curTick();

    RefreshWindow window;
    window.rank = rank;
    window.start = curTick();
    window.end = curTick() + dev_.tRFC;
    window.firstRow = refresh_counter_[rank];
    window.rowCount = dev_.rowsPerRefresh;
    refresh_counter_[rank] =
        (refresh_counter_[rank] + dev_.rowsPerRefresh)
        % dev_.rowsPerBank;

    for (const auto &listener : listeners_)
        listener(window);

    eventq().scheduleIn(dev_.tREFI(), [this, rank] { issueRef(rank); },
                        EventQueue::refreshPriority,
                        rankDomain(rank));
}

namespace
{

/** Phase of the first REF for a rank under the stagger policy. */
Tick
rankPhase(const DeviceConfig &dev, std::uint32_t rank,
          std::uint32_t num_ranks)
{
    return dev.tREFI() * static_cast<std::uint64_t>(rank) / num_ranks;
}

} // namespace

bool
RefreshController::rankLocked(std::uint32_t rank, Tick when) const
{
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    if (!started_)
        return false;
    const Tick phase = rankPhase(dev_, rank, num_ranks_);
    if (when < phase)
        return false;
    return (when - phase) % dev_.tREFI() < dev_.tRFC;
}

Tick
RefreshController::lockEnd(std::uint32_t rank, Tick when) const
{
    if (!rankLocked(rank, when))
        return when;
    const Tick phase = rankPhase(dev_, rank, num_ranks_);
    const Tick k = (when - phase) / dev_.tREFI();
    return phase + k * dev_.tREFI() + dev_.tRFC;
}

Tick
RefreshController::nextWindowStart(std::uint32_t rank, Tick when) const
{
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    const Tick phase = rankPhase(dev_, rank, num_ranks_);
    if (when <= phase)
        return phase;
    const Tick k = (when - phase + dev_.tREFI() - 1) / dev_.tREFI();
    return phase + k * dev_.tREFI();
}

} // namespace dram
} // namespace xfm
