#include "refresh.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace dram
{

bool
RefreshWindow::coversRow(std::uint32_t row,
                         std::uint32_t rows_per_bank) const
{
    // The refreshed range may wrap at the end of the bank.
    const std::uint32_t rel =
        (row + rows_per_bank - firstRow) % rows_per_bank;
    return rel < rowCount;
}

RefreshController::RefreshController(std::string name, EventQueue &eq,
                                     const DeviceConfig &dev,
                                     std::uint32_t num_ranks)
    : SimObject(std::move(name), eq), dev_(dev), num_ranks_(num_ranks),
      refresh_counter_(num_ranks, 0),
      window_start_(num_ranks, maxTick),
      ab_lock_end_(num_ranks, 0),
      pb_window_start_(std::size_t(num_ranks) * dev.banksPerChip,
                       maxTick),
      pb_lock_end_(std::size_t(num_ranks) * dev.banksPerChip, 0),
      raa_(std::size_t(num_ranks) * dev.banksPerChip, 0),
      contrib_(std::size_t(num_ranks) * dev.banksPerChip)
{
    XFM_ASSERT(num_ranks_ > 0, "need at least one rank");
    XFM_ASSERT(dev_.tRFC < dev_.tREFI(),
               "tRFC must be shorter than tREFI");
    if (dev_.refreshMode == RefreshMode::RefPb) {
        XFM_ASSERT(dev_.banksPerChip > 0, "need at least one bank");
        XFM_ASSERT(dev_.tSTAG > 0, "REFpb stagger must be non-zero");
        XFM_ASSERT(static_cast<Tick>(dev_.banksPerChip - 1)
                           * dev_.tSTAG
                       + dev_.tRFCpb
                   <= dev_.tREFI(),
                   "staggered REFpb train must fit in one tREFI");
    }
}

void
RefreshController::start()
{
    if (started_)
        return;
    started_ = true;
    // Stagger REF commands across ranks within one tREFI.
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
        const Tick phase = dev_.tREFI()
            * static_cast<std::uint64_t>(r) / num_ranks_;
        eventq().schedule(curTick() + phase,
                          [this, r] { issueRef(r); },
                          EventQueue::refreshPriority,
                          rankDomain(r));
    }
}

void
RefreshController::addListener(RefreshListener listener)
{
    listeners_.push_back(std::move(listener));
}

void
RefreshController::addRfmListener(RfmListener listener)
{
    rfm_listeners_.push_back(std::move(listener));
}

void
RefreshController::noteActivates(std::uint32_t rank,
                                 std::uint32_t bank,
                                 std::uint64_t count,
                                 std::uint32_t source)
{
    if (!rfmArmed() || count == 0)
        return;
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    XFM_ASSERT(bank < dev_.banksPerChip, "bank out of range");
    const std::size_t idx = bankIndex(rank, bank);
    rstats_.activationsNoted += count;
    // The device caps the RAA counter at RAAMMT: beyond it further
    // ACTs are blocked (accessStall), not counted.
    raa_[idx] = std::min<std::uint64_t>(raa_[idx] + count,
                                        dev_.effectiveRaammt());
    contrib_[idx][source] += count;
}

std::uint64_t
RefreshController::raa(std::uint32_t rank, std::uint32_t bank) const
{
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    XFM_ASSERT(bank < dev_.banksPerChip, "bank out of range");
    return raa_[bankIndex(rank, bank)];
}

bool
RefreshController::takeRfm(std::uint32_t rank, std::uint32_t bank,
                           std::uint32_t report_bank,
                           std::uint32_t stolen_slots)
{
    if (!rfmArmed())
        return false;
    const std::size_t idx = bankIndex(rank, bank);
    if (raa_[idx] < dev_.rfmRaaimt)
        return false;
    raa_[idx] -= dev_.rfmRaaimt;
    // Charge the dominant activation source since the last RFM
    // (ordered map iteration: ties resolve to the lowest id).
    std::uint32_t source = hostSource;
    std::uint64_t best = 0;
    for (const auto &kv : contrib_[idx]) {
        if (kv.second > best) {
            best = kv.second;
            source = kv.first;
        }
    }
    contrib_[idx].clear();
    ++rstats_.rfmCommands;
    rstats_.rfmStolenSlots += stolen_slots;
    for (const auto &listener : rfm_listeners_)
        listener(rank, report_bank, source, stolen_slots);
    return true;
}

void
RefreshController::issueRef(std::uint32_t rank)
{
    ++refs_issued_;
    window_start_[rank] = curTick();
    const std::uint32_t first_row = refresh_counter_[rank];
    refresh_counter_[rank] =
        (first_row + dev_.rowsPerRefresh) % dev_.rowsPerBank;

    if (dev_.refreshMode == RefreshMode::RefPb) {
        // One REFpb per bank, staggered by tSTAG within the tREFI.
        issuePbWindow(rank, 0, first_row);
        for (std::uint32_t b = 1; b < dev_.banksPerChip; ++b) {
            eventq().scheduleIn(
                static_cast<Tick>(b) * dev_.tSTAG,
                [this, rank, b, first_row] {
                    issuePbWindow(rank, b, first_row);
                },
                EventQueue::refreshPriority, rankDomain(rank));
        }
    } else {
        RefreshWindow window;
        window.rank = rank;
        window.start = curTick();
        window.firstRow = first_row;
        window.rowCount = dev_.rowsPerRefresh;
        Tick lock = dev_.tRFC;
        if (rfmArmed()) {
            // An all-bank REF carries at most one RFM: the hottest
            // bank past RAAIMT (ties to the lowest bank id).
            std::uint32_t hot = 0;
            std::uint64_t hot_raa = 0;
            for (std::uint32_t b = 0; b < dev_.banksPerChip; ++b) {
                const std::uint64_t v = raa_[bankIndex(rank, b)];
                if (v > hot_raa) {
                    hot_raa = v;
                    hot = b;
                }
            }
            if (hot_raa >= dev_.rfmRaaimt
                && takeRfm(rank, hot, RefreshWindow::allBanks,
                           maxAccessesPerTrfc(dev_))) {
                window.rfm = true;
                lock += dev_.tRFM;
            }
        }
        window.hira = dev_.hira && !window.rfm;
        if (window.hira)
            ++rstats_.hiraWindows;
        window.end = curTick() + lock;
        ab_lock_end_[rank] = window.end;

        for (const auto &listener : listeners_)
            listener(window);
    }

    eventq().scheduleIn(dev_.tREFI(), [this, rank] { issueRef(rank); },
                        EventQueue::refreshPriority,
                        rankDomain(rank));
}

void
RefreshController::issuePbWindow(std::uint32_t rank,
                                 std::uint32_t bank,
                                 std::uint32_t first_row)
{
    const std::size_t idx = bankIndex(rank, bank);
    ++rstats_.pbWindows;

    RefreshWindow window;
    window.rank = rank;
    window.bank = bank;
    window.start = curTick();
    window.firstRow = first_row;
    window.rowCount = dev_.rowsPerRefresh;
    Tick lock = dev_.tRFCpb;
    if (takeRfm(rank, bank, bank,
                std::max(1u, maxAccessesPerWindowOf(dev_,
                                                    dev_.tRFCpb)))) {
        window.rfm = true;
        lock += dev_.tRFM;
    }
    window.hira = dev_.hira && !window.rfm;
    if (window.hira)
        ++rstats_.hiraWindows;
    window.end = curTick() + lock;
    pb_window_start_[idx] = window.start;
    pb_lock_end_[idx] = window.end;

    for (const auto &listener : listeners_)
        listener(window);
}

namespace
{

/** Phase of the first REF for a rank under the stagger policy. */
Tick
rankPhase(const DeviceConfig &dev, std::uint32_t rank,
          std::uint32_t num_ranks)
{
    return dev.tREFI() * static_cast<std::uint64_t>(rank) / num_ranks;
}

} // namespace

Tick
RefreshController::pbPhase(std::uint32_t rank,
                           std::uint32_t bank) const
{
    return rankPhase(dev_, rank, num_ranks_)
        + static_cast<Tick>(bank) * dev_.tSTAG;
}

bool
RefreshController::rankLocked(std::uint32_t rank, Tick when) const
{
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    if (!started_)
        return false;
    const Tick phase = rankPhase(dev_, rank, num_ranks_);
    if (when < phase)
        return false;
    const Tick rel = (when - phase) % dev_.tREFI();
    if (dev_.refreshMode == RefreshMode::RefPb) {
        // Union of the staggered per-bank windows: the candidate is
        // the latest bank whose window has started; earlier banks'
        // windows end no later than its.
        const Tick b = std::min<Tick>(dev_.banksPerChip - 1,
                                      rel / dev_.tSTAG);
        return rel < b * dev_.tSTAG + dev_.tRFCpb;
    }
    return rel < dev_.tRFC;
}

Tick
RefreshController::lockEnd(std::uint32_t rank, Tick when) const
{
    if (!rankLocked(rank, when))
        return when;
    const Tick phase = rankPhase(dev_, rank, num_ranks_);
    if (dev_.refreshMode == RefreshMode::RefPb) {
        // Extend through the contiguous run of overlapping per-bank
        // windows covering @p when (bounded by banksPerChip steps).
        Tick end = when;
        while (rankLocked(rank, end)) {
            const Tick kk = (end - phase) / dev_.tREFI();
            const Tick rel = (end - phase) % dev_.tREFI();
            const Tick b = std::min<Tick>(dev_.banksPerChip - 1,
                                          rel / dev_.tSTAG);
            end = phase + kk * dev_.tREFI() + b * dev_.tSTAG
                + dev_.tRFCpb;
        }
        return end;
    }
    const Tick k = (when - phase) / dev_.tREFI();
    return phase + k * dev_.tREFI() + dev_.tRFC;
}

bool
RefreshController::bankLocked(std::uint32_t rank, std::uint32_t bank,
                              Tick when) const
{
    return bankLockEnd(rank, bank, when) > when;
}

Tick
RefreshController::bankLockEnd(std::uint32_t rank,
                               std::uint32_t bank, Tick when) const
{
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    XFM_ASSERT(bank < dev_.banksPerChip, "bank out of range");
    Tick end = when;
    if (!started_)
        return end;
    if (dev_.refreshMode == RefreshMode::RefPb) {
        const Tick phase = pbPhase(rank, bank);
        if (when >= phase) {
            const Tick rel = (when - phase) % dev_.tREFI();
            if (rel < dev_.tRFCpb)
                end = when - rel + dev_.tRFCpb;
        }
        // The tracked interval carries any RFM extension of the
        // bank's current window.
        const std::size_t idx = bankIndex(rank, bank);
        if (when >= pb_window_start_[idx] && when < pb_lock_end_[idx])
            end = std::max(end, pb_lock_end_[idx]);
        return end;
    }
    // All-bank mode: the rank lock is the bank lock; the tracked
    // interval carries any RFM extension of the current window.
    if (rankLocked(rank, when))
        end = lockEnd(rank, when);
    if (when >= window_start_[rank] && when < ab_lock_end_[rank])
        end = std::max(end, ab_lock_end_[rank]);
    return end;
}

Tick
RefreshController::nextBankWindowStart(std::uint32_t rank,
                                       std::uint32_t bank,
                                       Tick when) const
{
    if (dev_.refreshMode != RefreshMode::RefPb)
        return nextWindowStart(rank, when);
    const Tick phase = pbPhase(rank, bank);
    if (when <= phase)
        return phase;
    const Tick k = (when - phase + dev_.tREFI() - 1) / dev_.tREFI();
    return phase + k * dev_.tREFI();
}

Tick
RefreshController::accessStall(std::uint32_t rank, std::uint32_t bank,
                               Tick when)
{
    Tick stall = 0;
    const Tick lock_end = bankLockEnd(rank, bank, when);
    if (lock_end > when)
        stall = lock_end - when;
    if (rfmArmed()
        && raa_[bankIndex(rank, bank)] >= dev_.effectiveRaammt()) {
        // RAAMMT reached: the ACT blocks until the bank's next
        // refresh slot carries an RFM and drains the counter.
        ++rstats_.raammtBlocks;
        const Tick next = nextBankWindowStart(rank, bank,
                                              when + stall);
        const Tick window = dev_.refreshMode == RefreshMode::RefPb
            ? dev_.tRFCpb : dev_.tRFC;
        const Tick drained = next + window + dev_.tRFM;
        if (drained > when + stall)
            stall = drained - when;
    }
    return stall;
}

Tick
RefreshController::nextWindowStart(std::uint32_t rank, Tick when) const
{
    XFM_ASSERT(rank < num_ranks_, "rank out of range");
    const Tick phase = rankPhase(dev_, rank, num_ranks_);
    if (when <= phase)
        return phase;
    const Tick k = (when - phase + dev_.tREFI() - 1) / dev_.tREFI();
    return phase + k * dev_.tREFI();
}

void
RefreshController::registerMetrics(obs::MetricRegistry &r,
                                   const std::string &prefix)
{
    const std::string p = prefix + ".refresh.";
    r.counter(p + "pbWindows", &rstats_.pbWindows,
              "per-bank REFpb windows issued");
    r.counter(p + "rfmCommands", &rstats_.rfmCommands,
              "RFMs forced by RAAIMT");
    r.counter(p + "rfmStolenSlots", &rstats_.rfmStolenSlots,
              "NMA service slots destroyed by RFMs");
    r.counter(p + "raammtBlocks", &rstats_.raammtBlocks,
              "host ACTs blocked at RAAMMT");
    r.counter(p + "hiraWindows", &rstats_.hiraWindows,
              "windows widened by HiRA overlap");
    r.counter(p + "activationsNoted", &rstats_.activationsNoted,
              "row activations fed into RAA counters");
}

} // namespace dram
} // namespace xfm
