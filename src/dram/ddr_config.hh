/**
 * @file
 * DDR device and DIMM configuration.
 *
 * Encodes the DDR4/DDR5 device geometries and timing parameters the
 * paper uses, including Table 1 (rows per bank, banks per chip,
 * tRFC, rows refreshed per tRFC, subarrays per bank) and the
 * methodology section's DDR4-2400 / 3200 MT/s settings.
 */

#ifndef XFM_DRAM_DDR_CONFIG_HH
#define XFM_DRAM_DDR_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace xfm
{

class Config;

namespace dram
{

/** DRAM device generation. */
enum class DdrGeneration
{
    Ddr4,
    Ddr5,
};

/**
 * Refresh command granularity.
 *
 * RefAb is the classic all-bank REF (the whole rank locks for tRFC,
 * the behaviour every pre-existing experiment is calibrated to).
 * RefPb issues per-bank REFpb commands staggered by tSTAG inside
 * each tREFI: only the refreshing bank locks (for the shorter
 * tRFCpb), so the CPU keeps DSARP-style refresh-access parallelism
 * while the NMA serves each bank's window in turn.
 */
enum class RefreshMode : std::uint8_t
{
    RefAb,
    RefPb,
};

const char *refreshModeName(RefreshMode m);

/**
 * Per-chip DRAM device configuration.
 *
 * A device is one DRAM chip; eight (x8) act in lockstep to form a
 * 64-bit rank.
 */
struct DeviceConfig
{
    std::string name;
    DdrGeneration generation = DdrGeneration::Ddr5;

    std::uint64_t capacityBits = 0;   ///< device density, e.g. 32 Gb
    std::uint32_t banksPerChip = 32;
    std::uint32_t rowsPerBank = 128 * 1024;
    std::uint32_t subarraysPerBank = 256;
    std::uint32_t rowBytesPerChip = 1024;  ///< page size per chip
    std::uint32_t dataWidthBits = 8;       ///< x8 device

    /** Rows refreshed in each bank by one REF command. */
    std::uint32_t rowsPerRefresh = 16;

    // Core timing parameters.
    Tick tCK = 625;              ///< clock period (3200 MT/s => 625ps)
    Tick tRCD = nanoseconds(14.0);
    Tick tCL = nanoseconds(14.0);
    Tick tRP = nanoseconds(14.0);
    Tick tRC = nanoseconds(46.0);
    Tick tRFC = nanoseconds(410.0);   ///< all-bank refresh duration
    Tick tBURST = picoseconds(2500);  ///< BL16 on DDR5 at 3200 MT/s
    Tick tSTAG = nanoseconds(10.0);   ///< stagger between bank refreshes

    /** DRAM retention time: every row refreshed once per interval. */
    Tick retention = milliseconds(32.0);

    /** REF commands per retention interval (JEDEC: 8192). */
    std::uint32_t refCommandsPerRetention = 8192;

    // Refresh-management realism (ISSUE 9). All default-off: with
    // refreshMode == RefAb and rfmRaaimt == 0 the controller is
    // byte-identical to the all-bank-only model.
    /** Refresh command granularity (RefAb = legacy all-bank). */
    RefreshMode refreshMode = RefreshMode::RefAb;
    /** Per-bank refresh duration (REFpb locks one bank this long). */
    Tick tRFCpb = nanoseconds(130.0);
    /**
     * RFM (Refresh Management) duration: the bank stays locked this
     * long past its REF window while the forced victim refresh runs.
     */
    Tick tRFM = nanoseconds(350.0);
    /**
     * RAA Initial Management Threshold: once a bank's rolling
     * activation counter reaches this, the controller must issue an
     * RFM at the bank's next refresh slot (stealing the NMA's
     * service window there). 0 disables RFM tracking entirely.
     */
    std::uint32_t rfmRaaimt = 0;
    /**
     * RAA Maximum Management Threshold: at or above this, further
     * ACTs to the bank are blocked until an RFM drains the counter —
     * the CPU-visible denial-of-service lever RogueRFM weaponizes.
     * 0 derives 4 x rfmRaaimt when RFM is armed.
     */
    std::uint32_t rfmRaammt = 0;
    /**
     * HiRA-like hidden row activation: refresh of one subarray
     * overlaps with activation elsewhere, widening the NMA's service
     * slots (the device adds hiraBonusSlots per window).
     */
    bool hira = false;

    /** True when any refresh-management feature changes behaviour. */
    bool
    refreshRealismArmed() const
    {
        return refreshMode != RefreshMode::RefAb || rfmRaaimt != 0
            || hira;
    }

    /** Effective RAAMMT (derives the default from rfmRaaimt). */
    std::uint32_t
    effectiveRaammt() const
    {
        return rfmRaammt ? rfmRaammt : 4 * rfmRaaimt;
    }

    /** Derived: the average interval between REF commands. */
    Tick
    tREFI() const
    {
        return retention / refCommandsPerRetention;
    }

    /** Rows per subarray (Table 1 assumes 512). */
    std::uint32_t
    rowsPerSubarray() const
    {
        return rowsPerBank / subarraysPerBank;
    }

    /** Rows that must be refreshed per REF command to cover the
     *  bank within the retention time. */
    std::uint32_t
    requiredRowsPerRefresh() const
    {
        return (rowsPerBank + refCommandsPerRetention - 1)
            / refCommandsPerRetention;
    }
};

/**
 * Maximum 4 KiB accesses an NMA can stream out of a rank within one
 * tRFC window (paper Sec. 5): the first page costs
 * tRCD + tCL + 32 x tBURST; subsequent pages overlap their
 * activation latency with the previous burst, costing 32 x tBURST
 * each. Yields 2 / 3 / 4 for 8 / 16 / 32 Gb DDR5 devices.
 */
std::uint32_t maxAccessesPerTrfc(const DeviceConfig &dev);

/** Same pipeline arithmetic for an arbitrary window length (e.g.
 *  tRFCpb for per-bank windows). Returns 0 when nothing fits. */
std::uint32_t maxAccessesPerWindowOf(const DeviceConfig &dev,
                                     Tick window);

/** Time offset (from window start) at which access @p k completes:
 *  first access pays the full activation, later ones pipeline. */
Tick accessCompletionOffset(const DeviceConfig &dev, std::uint32_t k);

/**
 * Apply the `refresh.*` / `rfm.*` config keys to @p dev:
 *   refresh.mode      = refab | refpb
 *   refresh.hira      = 0 | 1
 *   refresh.trfcpb_ns = per-bank refresh duration
 *   rfm.raaimt        = RFM issue threshold (0 = RFM disabled)
 *   rfm.raammt        = ACT-blocking threshold (0 = 4 x raaimt)
 *   rfm.trfm_ns       = RFM lock duration
 * Absent keys leave the device untouched, so a config without any
 * of them stays byte-identical to the pre-realism model.
 */
void applyRefreshConfig(DeviceConfig &dev, const Config &cfg);

/** Table 1 devices: 8 Gb, 16 Gb, and 32 Gb DDR5. */
DeviceConfig ddr5Device8Gb();
DeviceConfig ddr5Device16Gb();
DeviceConfig ddr5Device32Gb();

/** DDR4-2400 device used by the emulator methodology (gem5 model). */
DeviceConfig ddr4Device8Gb2400();

/**
 * A rank: eight x8 devices in lockstep (plus implicit ECC chips).
 * A DIMM in this model carries one or two ranks and one NMA in the
 * buffer device.
 */
struct RankConfig
{
    DeviceConfig device;
    std::uint32_t chipsPerRank = 8;

    /** Usable rank capacity in bytes (excluding ECC). */
    std::uint64_t
    capacityBytes() const
    {
        return device.capacityBits / 8 * chipsPerRank;
    }

    /** Bytes per DRAM row across the whole rank. */
    std::uint32_t
    rowBytes() const
    {
        return device.rowBytesPerChip * chipsPerRank;
    }
};

/** Full channel/DIMM topology for a simulated memory system. */
struct MemSystemConfig
{
    RankConfig rank;
    std::uint32_t channels = 4;
    std::uint32_t dimmsPerChannel = 2;
    std::uint32_t ranksPerDimm = 1;

    /** Channel interleave granularity (Skylake: 256 B). */
    std::uint32_t channelInterleave = 256;
    /** Bank interleave granularity (Skylake: 128 B). */
    std::uint32_t bankInterleave = 128;

    /** Peak per-channel bandwidth in bytes/sec. */
    double
    channelBandwidthBps() const
    {
        // Data bus: 8 bytes transferred per tCK (double data rate).
        return 8.0 * 2.0 / (static_cast<double>(rank.device.tCK) * 1e-12);
    }

    std::uint32_t
    totalRanks() const
    {
        return channels * dimmsPerChannel * ranksPerDimm;
    }

    std::uint64_t
    totalCapacityBytes() const
    {
        return rank.capacityBytes() * totalRanks();
    }
};

/** The paper's experimental platform: 6x 16 GiB DDR4 DIMMs. */
MemSystemConfig defaultMemSystem();

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_DDR_CONFIG_HH
