#include "address_map.hh"

#include "common/logging.hh"

namespace xfm
{
namespace dram
{

AddressMap::AddressMap(const MemSystemConfig &cfg)
    : channels_(cfg.channels),
      ranks_per_channel_(cfg.dimmsPerChannel * cfg.ranksPerDimm),
      banks_(cfg.rank.device.banksPerChip),
      rows_per_bank_(cfg.rank.device.rowsPerBank),
      rows_per_subarray_(cfg.rank.device.rowsPerSubarray()),
      channel_interleave_(cfg.channelInterleave),
      bank_interleave_(cfg.bankInterleave),
      stripes_per_row_(cfg.rank.rowBytes() / cfg.bankInterleave),
      capacity_(cfg.totalCapacityBytes())
{
    XFM_ASSERT(banks_ % 2 == 0, "bank-pair interleave needs even banks");
    XFM_ASSERT(cfg.rank.rowBytes() % bank_interleave_ == 0,
               "row size must be a multiple of the bank interleave");
    XFM_ASSERT(channel_interleave_ % bank_interleave_ == 0,
               "channel interleave must contain whole bank stripes");
}

DramCoord
AddressMap::decode(std::uint64_t addr) const
{
    XFM_ASSERT(addr < capacity_, "address ", addr, " beyond capacity ",
               capacity_);
    DramCoord c{};
    c.channel = static_cast<std::uint32_t>(
        (addr / channel_interleave_) % channels_);
    const std::uint64_t local =
        (addr / (std::uint64_t(channel_interleave_) * channels_))
            * channel_interleave_
        + (addr % channel_interleave_);

    c.offset = static_cast<std::uint32_t>(local % bank_interleave_);
    std::uint64_t s = local / bank_interleave_;
    const std::uint32_t bank_lsb = static_cast<std::uint32_t>(s % 2);
    s /= 2;
    c.column = static_cast<std::uint32_t>(s % stripes_per_row_);
    s /= stripes_per_row_;
    const std::uint32_t bank_group =
        static_cast<std::uint32_t>(s % (banks_ / 2));
    s /= (banks_ / 2);
    c.rank = static_cast<std::uint32_t>(s % ranks_per_channel_);
    s /= ranks_per_channel_;
    c.row = static_cast<std::uint32_t>(s);
    c.bank = bank_group * 2 + bank_lsb;
    XFM_ASSERT(c.row < rows_per_bank_, "row decode overflow");
    return c;
}

std::uint64_t
AddressMap::encode(const DramCoord &coord) const
{
    XFM_ASSERT(coord.channel < channels_ && coord.bank < banks_
               && coord.row < rows_per_bank_
               && coord.rank < ranks_per_channel_
               && coord.column < stripes_per_row_
               && coord.offset < bank_interleave_,
               "encode: coordinate out of range");
    const std::uint32_t bank_lsb = coord.bank % 2;
    const std::uint32_t bank_group = coord.bank / 2;

    std::uint64_t s = coord.row;
    s = s * ranks_per_channel_ + coord.rank;
    s = s * (banks_ / 2) + bank_group;
    s = s * stripes_per_row_ + coord.column;
    s = s * 2 + bank_lsb;

    const std::uint64_t local = s * bank_interleave_ + coord.offset;
    const std::uint64_t block = local / channel_interleave_;
    const std::uint64_t within = local % channel_interleave_;
    return (block * channels_ + coord.channel) * channel_interleave_
        + within;
}

} // namespace dram
} // namespace xfm
