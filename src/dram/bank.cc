#include "bank.hh"

#include "common/logging.hh"

namespace xfm
{
namespace dram
{

Bank::Bank(const DeviceConfig &dev)
    : rows_per_bank_(dev.rowsPerBank),
      rows_per_subarray_(dev.rowsPerSubarray()),
      subarrays_(dev.subarraysPerBank)
{
    XFM_ASSERT(rows_per_subarray_ > 0, "empty subarrays");
}

void
Bank::beginRefresh(std::uint32_t first_row, std::uint32_t count)
{
    XFM_ASSERT(!refreshing_, "nested refresh window");
    XFM_ASSERT(count <= subarrays_,
               "cannot refresh more rows in parallel than there are "
               "subarrays (one local row buffer each)");
    refreshing_ = true;
    refresh_first_ = first_row % rows_per_bank_;
    refresh_count_ = count;
}

void
Bank::endRefresh()
{
    XFM_ASSERT(refreshing_, "endRefresh outside a window");
    refreshing_ = false;
    refresh_count_ = 0;
    // A random-access row held open across the window boundary is
    // precharged with the rest of the bank (auto-precharge).
    random_open_subarray_ = -1;
}

bool
Bank::rowInRefreshSet(std::uint32_t row) const
{
    if (!refreshing_)
        return false;
    const std::uint32_t rel =
        (row + rows_per_bank_ - refresh_first_) % rows_per_bank_;
    return rel < refresh_count_;
}

BankAccessResult
Bank::accessConditional(std::uint32_t row)
{
    XFM_ASSERT(row < rows_per_bank_, "row out of range");
    if (!rowInRefreshSet(row)) {
        ++subarray_conflicts_;
        return BankAccessResult::SubarrayBusy;
    }
    // The refresh already activated this row in its subarray's
    // local row buffer; bursting it out is free of activation.
    return BankAccessResult::Ok;
}

BankAccessResult
Bank::accessRandom(std::uint32_t row)
{
    XFM_ASSERT(row < rows_per_bank_, "row out of range");
    XFM_ASSERT(refreshing_,
               "NMA random accesses only occur inside tRFC windows");
    const std::uint32_t sub = subarrayOf(row);

    // The target subarray must not be refreshing a row this window:
    // its local row buffer is in use.
    for (std::uint32_t k = 0; k < refresh_count_; ++k) {
        const std::uint32_t r =
            (refresh_first_ + k) % rows_per_bank_;
        if (subarrayOf(r) == sub) {
            ++subarray_conflicts_;
            return BankAccessResult::SubarrayBusy;
        }
    }
    // Only one subarray may drive the global bitlines (the added
    // isolation latch selects exactly one).
    if (random_open_subarray_ >= 0
        && random_open_subarray_ != static_cast<std::int64_t>(sub)) {
        ++bitline_conflicts_;
        return BankAccessResult::GlobalBitlineBusy;
    }
    random_open_subarray_ = sub;
    return BankAccessResult::Ok;
}

void
Bank::releaseRandom()
{
    random_open_subarray_ = -1;
}

} // namespace dram
} // namespace xfm
