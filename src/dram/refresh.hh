/**
 * @file
 * Auto-refresh and refresh-management controller.
 *
 * In the legacy all-bank mode (RefAb) one REF command per tREFI
 * locks the whole rank for tRFC and refreshes `rowsPerRefresh`
 * consecutive rows in every bank — exactly the behaviour XFM
 * piggybacks on. In per-bank mode (RefPb) each tREFI instead issues
 * one REFpb per bank, staggered by tSTAG, locking only the
 * refreshing bank for the shorter tRFCpb; the CPU keeps
 * DSARP-style refresh-access parallelism on the other banks while
 * the NMA serves each bank's narrower window in turn.
 *
 * RFM (Refresh Management) realism rides on top of either mode:
 * per-(rank, bank) rolling-activation (RAA) counters accumulate via
 * noteActivates(); once a bank crosses RAAIMT its next refresh slot
 * is converted into an RFM — the bank stays locked for tRFM past
 * its REF window and the NMA's service slots there are stolen. At
 * or above RAAMMT further host ACTs to the bank block until the RFM
 * drains the counter — the denial-of-service lever RogueRFM
 * weaponizes, surfaced to the memory controller via accessStall().
 * Every RFM is attributed to the dominant activation source since
 * the last RFM so the QoS layer can charge the tenant whose
 * activity destroyed the window time.
 *
 * Listeners (the NMA refresh-window scheduler) are notified at each
 * window start with the refreshed row range, the bank (allBanks in
 * RefAb mode), and the rfm/hira flags, so they can schedule
 * conditional accesses or account stolen slots.
 *
 * With refreshMode == RefAb, rfmRaaimt == 0, and hira off (all
 * defaults) the controller is byte-identical to the all-bank-only
 * model this file used to implement.
 */

#ifndef XFM_DRAM_REFRESH_HH
#define XFM_DRAM_REFRESH_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "dram/ddr_config.hh"
#include "obs/registry.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace dram
{

/** Description of one refresh window on a rank. */
struct RefreshWindow
{
    /** Sentinel bank id: the window covers every bank (RefAb). */
    static constexpr std::uint32_t allBanks = 0xffffffffu;

    std::uint32_t rank;
    Tick start;
    Tick end;                 ///< start + lock duration
    std::uint32_t firstRow;   ///< first row refreshed in every bank
    std::uint32_t rowCount;   ///< rowsPerRefresh (may wrap the bank)
    /** Bank being refreshed (allBanks for all-bank REF). */
    std::uint32_t bank = allBanks;
    /** An RFM rides this slot: the lock extends by tRFM and the
     *  NMA's service slots here are stolen. */
    bool rfm = false;
    /** HiRA overlap widens the NMA's slot budget this window. */
    bool hira = false;

    /** True if @p row is inside the refreshed range (with wrap). */
    bool coversRow(std::uint32_t row, std::uint32_t rows_per_bank) const;

    /** True if the window's lock covers @p b. */
    bool
    coversBank(std::uint32_t b) const
    {
        return bank == allBanks || bank == b;
    }
};

/** Observer of refresh-window starts (e.g. the XFM NMA). */
using RefreshListener = std::function<void(const RefreshWindow &)>;

/**
 * Observer of RFM issue: (rank, bank, source, stolenSlots). The
 * bank is RefreshWindow::allBanks when an all-bank REF carried the
 * RFM; source is the dominant activation contributor since the last
 * RFM (hostSource when the host memory controller dominated).
 */
using RfmListener = std::function<void(
    std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t)>;

/** Refresh-management statistics (all zero while disarmed). */
struct RefreshStats
{
    std::uint64_t pbWindows = 0;     ///< per-bank REFpb windows
    std::uint64_t rfmCommands = 0;   ///< RFMs forced by RAAIMT
    std::uint64_t rfmStolenSlots = 0;  ///< NMA slots RFMs destroyed
    std::uint64_t raammtBlocks = 0;  ///< host ACTs blocked at RAAMMT
    std::uint64_t hiraWindows = 0;   ///< windows widened by HiRA
    std::uint64_t activationsNoted = 0;  ///< ACTs fed into RAA
};

/**
 * Auto-refresh engine for all ranks of a memory system.
 *
 * REF commands to different ranks are staggered across tREFI so the
 * power-delivery constraint the paper mentions (tSTAG) is honoured
 * at rank granularity; REFpb commands within a rank are further
 * staggered by tSTAG at bank granularity.
 */
class RefreshController : public SimObject
{
  public:
    /** Activation source id for the host memory controller. */
    static constexpr std::uint32_t hostSource = 0xffffffffu;

    RefreshController(std::string name, EventQueue &eq,
                      const DeviceConfig &dev, std::uint32_t num_ranks);

    /** Begin issuing REF commands (idempotent). */
    void start();

    /**
     * Route each rank's REF events to event domain base + rank
     * (0 — the default — posts every rank on this object's own
     * domain). The XFM backend maps rank r onto DIMM r, so its
     * refresh ticks ride the same shard as the DIMM's device and
     * driver events (DESIGN.md §13).
     */
    void setRankDomainBase(std::uint32_t base)
    {
        rank_domain_base_ = base;
    }

    /** Event domain used for @p rank's REF events. */
    std::uint32_t
    rankDomain(std::uint32_t rank) const
    {
        return rank_domain_base_ ? rank_domain_base_ + rank
                                 : eventDomain();
    }

    /** Register an observer of window starts. */
    void addListener(RefreshListener listener);

    /** Register an observer of RFM issue (attribution feed). */
    void addRfmListener(RfmListener listener);

    /**
     * Feed @p count row activations on (rank, bank) into the RAA
     * counters, attributed to @p source (a tenant id, or hostSource
     * for plain memory-controller traffic). No-op while RFM is
     * disarmed (rfmRaaimt == 0), so the legacy model takes no new
     * state transitions.
     */
    void noteActivates(std::uint32_t rank, std::uint32_t bank,
                       std::uint64_t count,
                       std::uint32_t source = hostSource);

    /**
     * True if the rank is inside an all-bank tRFC window at @p when.
     * In RefPb mode this reports whether ANY bank of the rank is
     * locked (the union of the staggered per-bank windows).
     */
    bool rankLocked(std::uint32_t rank, Tick when) const;

    /** End of the lock covering @p when (or @p when if unlocked). */
    Tick lockEnd(std::uint32_t rank, Tick when) const;

    /**
     * True if (rank, bank) is locked at @p when: the all-bank
     * window in RefAb mode, the bank's own staggered REFpb window
     * (plus any RFM extension) in RefPb mode.
     */
    bool bankLocked(std::uint32_t rank, std::uint32_t bank,
                    Tick when) const;

    /** End of the bank lock covering @p when (@p when if open). */
    Tick bankLockEnd(std::uint32_t rank, std::uint32_t bank,
                     Tick when) const;

    /**
     * Delay before a host access to (rank, bank) may proceed at
     * @p when: the remaining refresh/RFM lock, plus — at or above
     * RAAMMT — the wait for the bank's next RFM slot to drain the
     * RAA counter (ACTs are blocked until then). Counts
     * raammtBlocks; 0 in the default disarmed configuration.
     */
    Tick accessStall(std::uint32_t rank, std::uint32_t bank,
                     Tick when);

    /** Next window start at or after @p when for @p rank. */
    Tick nextWindowStart(std::uint32_t rank, Tick when) const;

    /** Rows refreshed per REF command. */
    std::uint32_t rowsPerRefresh() const { return dev_.rowsPerRefresh; }

    /** Total REF commands issued so far (all ranks). */
    std::uint64_t refsIssued() const { return refs_issued_.value(); }

    /** Current RAA counter of (rank, bank). */
    std::uint64_t raa(std::uint32_t rank, std::uint32_t bank) const;

    /** True when RFM tracking is armed (rfmRaaimt != 0). */
    bool rfmArmed() const { return dev_.rfmRaaimt != 0; }

    /** True when any realism feature changes observable behaviour
     *  (per-bank mode, RFM, or HiRA). */
    bool realismArmed() const { return dev_.refreshRealismArmed(); }

    const RefreshStats &refreshStats() const { return rstats_; }

    /**
     * Register the `<prefix>.refresh.*` metric family. Call only
     * when realismArmed(): disarmed runs keep their metric
     * namespace unchanged (the byte-identity contract).
     */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

    /** Fraction of time each rank spends locked (tRFC / tREFI). */
    double
    lockedFraction() const
    {
        return static_cast<double>(dev_.tRFC)
            / static_cast<double>(dev_.tREFI());
    }

    const DeviceConfig &device() const { return dev_; }

  private:
    void issueRef(std::uint32_t rank);
    void issuePbWindow(std::uint32_t rank, std::uint32_t bank,
                       std::uint32_t first_row);

    /** Flat (rank, bank) state index. */
    std::size_t
    bankIndex(std::uint32_t rank, std::uint32_t bank) const
    {
        return std::size_t(rank) * dev_.banksPerChip + bank;
    }

    /** Closed-form start of bank @p bank's REFpb slot k = 0. */
    Tick pbPhase(std::uint32_t rank, std::uint32_t bank) const;

    /** Next REFpb slot start for (rank, bank) at or after @p when
     *  (RefAb mode: the rank's next all-bank slot). */
    Tick nextBankWindowStart(std::uint32_t rank, std::uint32_t bank,
                             Tick when) const;

    /** Consume the bank's RFM decision for a window starting now:
     *  returns true (and drains RAA, attributes, notifies) when the
     *  slot converts to an RFM. @p stolen_slots is reported to RFM
     *  listeners. */
    bool takeRfm(std::uint32_t rank, std::uint32_t bank,
                 std::uint32_t report_bank,
                 std::uint32_t stolen_slots);

    DeviceConfig dev_;
    std::uint32_t num_ranks_;
    bool started_ = false;

    /** Event-domain base for per-rank REF events (0 = untagged). */
    std::uint32_t rank_domain_base_ = 0;

    /** Next row to refresh, per rank. */
    std::vector<std::uint32_t> refresh_counter_;
    /** Start of the current/most recent window, per rank. */
    std::vector<Tick> window_start_;
    /** Exact end of the most recent rank lock (RFM-extended). */
    std::vector<Tick> ab_lock_end_;
    /** Per-(rank, bank) most recent REFpb lock interval. */
    std::vector<Tick> pb_window_start_;
    std::vector<Tick> pb_lock_end_;
    /** Per-(rank, bank) rolling activation counters. */
    std::vector<std::uint64_t> raa_;
    /** Per-(rank, bank) activation attribution since last RFM
     *  (ordered map: the dominant-source pick is deterministic). */
    std::vector<std::map<std::uint32_t, std::uint64_t>> contrib_;

    std::vector<RefreshListener> listeners_;
    std::vector<RfmListener> rfm_listeners_;

    stats::Counter refs_issued_;
    RefreshStats rstats_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_REFRESH_HH
