/**
 * @file
 * Per-rank auto-refresh controller.
 *
 * Issues one REF command per tREFI to each rank. During the tRFC
 * window that follows, the whole rank is locked to the CPU (all-bank
 * refresh) and `rowsPerRefresh` consecutive rows in every bank are
 * refreshed, advancing a per-rank refresh counter that wraps at the
 * bank size — exactly the behaviour XFM piggybacks on.
 *
 * Listeners (the NMA refresh-window scheduler) are notified at each
 * window start with the refreshed row range so they can schedule
 * conditional accesses.
 */

#ifndef XFM_DRAM_REFRESH_HH
#define XFM_DRAM_REFRESH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "dram/ddr_config.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace dram
{

/** Description of one all-bank refresh window on a rank. */
struct RefreshWindow
{
    std::uint32_t rank;
    Tick start;
    Tick end;                 ///< start + tRFC
    std::uint32_t firstRow;   ///< first row refreshed in every bank
    std::uint32_t rowCount;   ///< rowsPerRefresh (may wrap the bank)

    /** True if @p row is inside the refreshed range (with wrap). */
    bool coversRow(std::uint32_t row, std::uint32_t rows_per_bank) const;
};

/** Observer of refresh-window starts (e.g. the XFM NMA). */
using RefreshListener = std::function<void(const RefreshWindow &)>;

/**
 * Auto-refresh engine for all ranks of a memory system.
 *
 * REF commands to different ranks are staggered across tREFI so the
 * power-delivery constraint the paper mentions (tSTAG) is honoured
 * at rank granularity.
 */
class RefreshController : public SimObject
{
  public:
    RefreshController(std::string name, EventQueue &eq,
                      const DeviceConfig &dev, std::uint32_t num_ranks);

    /** Begin issuing REF commands (idempotent). */
    void start();

    /**
     * Route each rank's REF events to event domain base + rank
     * (0 — the default — posts every rank on this object's own
     * domain). The XFM backend maps rank r onto DIMM r, so its
     * refresh ticks ride the same shard as the DIMM's device and
     * driver events (DESIGN.md §13).
     */
    void setRankDomainBase(std::uint32_t base)
    {
        rank_domain_base_ = base;
    }

    /** Event domain used for @p rank's REF events. */
    std::uint32_t
    rankDomain(std::uint32_t rank) const
    {
        return rank_domain_base_ ? rank_domain_base_ + rank
                                 : eventDomain();
    }

    /** Register an observer of window starts. */
    void addListener(RefreshListener listener);

    /** True if the rank is inside a tRFC window at @p when. */
    bool rankLocked(std::uint32_t rank, Tick when) const;

    /** End of the lock covering @p when (or @p when if unlocked). */
    Tick lockEnd(std::uint32_t rank, Tick when) const;

    /** Next window start at or after @p when for @p rank. */
    Tick nextWindowStart(std::uint32_t rank, Tick when) const;

    /** Rows refreshed per REF command. */
    std::uint32_t rowsPerRefresh() const { return dev_.rowsPerRefresh; }

    /** Total REF commands issued so far (all ranks). */
    std::uint64_t refsIssued() const { return refs_issued_.value(); }

    /** Fraction of time each rank spends locked (tRFC / tREFI). */
    double
    lockedFraction() const
    {
        return static_cast<double>(dev_.tRFC)
            / static_cast<double>(dev_.tREFI());
    }

    const DeviceConfig &device() const { return dev_; }

  private:
    void issueRef(std::uint32_t rank);

    DeviceConfig dev_;
    std::uint32_t num_ranks_;
    bool started_ = false;

    /** Event-domain base for per-rank REF events (0 = untagged). */
    std::uint32_t rank_domain_base_ = 0;

    /** Next row to refresh, per rank. */
    std::vector<std::uint32_t> refresh_counter_;
    /** Start of the current/most recent window, per rank. */
    std::vector<Tick> window_start_;
    std::vector<RefreshListener> listeners_;

    stats::Counter refs_issued_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_REFRESH_HH
