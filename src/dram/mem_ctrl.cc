#include "mem_ctrl.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"

namespace xfm
{
namespace dram
{

MemCtrl::MemCtrl(std::string name, EventQueue &eq,
                 const MemSystemConfig &cfg, RefreshController *refresh)
    : SimObject(std::move(name), eq), cfg_(cfg), map_(cfg),
      refresh_(refresh),
      queues_(cfg.channels),
      busy_until_(cfg.channels, 0),
      pump_scheduled_(cfg.channels, false),
      open_row_(std::size_t(cfg.channels)
                    * map_.ranksPerChannel() * map_.banksPerRank(),
                -1),
      ext_lock_until_(std::size_t(cfg.channels)
                          * map_.ranksPerChannel(),
                      0)
{}

void
MemCtrl::lockRank(std::uint32_t channel, std::uint32_t rank,
                  Tick until)
{
    XFM_ASSERT(channel < cfg_.channels
                   && rank < map_.ranksPerChannel(),
               "lockRank: bad channel/rank");
    Tick &slot =
        ext_lock_until_[std::size_t(channel) * map_.ranksPerChannel()
                        + rank];
    slot = std::max(slot, until);
}

void
MemCtrl::submit(MemRequest req)
{
    XFM_ASSERT(req.size > 0, "zero-size request");
    XFM_ASSERT(req.addr + req.size <= map_.capacityBytes(),
               "request beyond capacity");

    // Count the chunks first so the completion latch is exact.
    const std::uint64_t ileave = cfg_.channelInterleave;
    std::uint32_t nchunks = 0;
    {
        std::uint64_t a = req.addr;
        std::uint64_t remaining = req.size;
        while (remaining > 0) {
            const std::uint64_t in_chunk =
                std::min<std::uint64_t>(remaining,
                                        ileave - (a % ileave));
            ++nchunks;
            a += in_chunk;
            remaining -= in_chunk;
        }
    }

    auto parent = std::make_shared<
        std::pair<std::uint32_t, std::function<void(Tick)>>>(
        nchunks, std::move(req.onComplete));

    std::uint64_t a = req.addr;
    std::uint64_t remaining = req.size;
    while (remaining > 0) {
        const std::uint64_t in_chunk = std::min<std::uint64_t>(
            remaining, ileave - (a % ileave));
        Chunk chunk;
        chunk.addr = a;
        chunk.size = static_cast<std::uint32_t>(in_chunk);
        chunk.isWrite = req.isWrite;
        chunk.enqueued = curTick();
        chunk.parent = parent;
        const auto coord = map_.decode(a);
        queues_[coord.channel].push_back(std::move(chunk));
        if (!pump_scheduled_[coord.channel]) {
            pump_scheduled_[coord.channel] = true;
            eventq().scheduleIn(0,
                                [this, ch = coord.channel] { pump(ch); },
                                EventQueue::controllerMin,
                                eventDomain());
        }
        a += in_chunk;
        remaining -= in_chunk;
    }
}

void
MemCtrl::pump(std::uint32_t channel)
{
    pump_scheduled_[channel] = false;
    auto &q = queues_[channel];
    if (q.empty())
        return;

    // The data bus serialises chunks; wait for it to free up.
    if (busy_until_[channel] > curTick()) {
        pump_scheduled_[channel] = true;
        eventq().schedule(busy_until_[channel],
                          [this, channel] { pump(channel); },
                          EventQueue::controllerMin, eventDomain());
        return;
    }

    // FR-FCFS: prefer the oldest request that hits an open row,
    // searching a bounded window past the head so misses cannot
    // starve.
    std::size_t pick = 0;
    const std::size_t window = std::min(q.size(), frfcfsWindow);
    for (std::size_t i = 0; i < window; ++i) {
        const auto coord = map_.decode(q[i].addr);
        const std::size_t bank_idx =
            (std::size_t(coord.channel) * map_.ranksPerChannel()
             + coord.rank) * map_.banksPerRank() + coord.bank;
        if (open_row_[bank_idx]
            == static_cast<std::int64_t>(coord.row)) {
            pick = i;
            break;
        }
    }
    if (pick != 0)
        ++stats_.frfcfsBypasses;
    Chunk chunk = std::move(q[pick]);
    q.erase(q.begin() + static_cast<long>(pick));
    stats_.queueTicks += curTick() - chunk.enqueued;

    const Tick done = serviceChunk(chunk, curTick());
    busy_until_[channel] = done;

    eventq().schedule(done, [parent = chunk.parent, done] {
        if (--parent->first == 0 && parent->second)
            parent->second(done);
    }, EventQueue::defaultPriority, eventDomain());

    if (!q.empty()) {
        pump_scheduled_[channel] = true;
        eventq().schedule(done, [this, channel] { pump(channel); },
                          EventQueue::controllerMin, eventDomain());
    }
}

Tick
MemCtrl::serviceChunk(const Chunk &chunk, Tick start)
{
    const auto coord = map_.decode(chunk.addr);
    const auto &dev = cfg_.rank.device;

    Tick t = start;
    // Refresh lock (bank-granular under REFpb, the whole rank under
    // all-bank REF), plus RAAMMT ACT-blocking when RFM is armed.
    if (refresh_) {
        const Tick stall = refresh_->accessStall(coord.rank,
                                                 coord.bank, t);
        if (stall > 0) {
            stats_.refreshStallTicks += stall;
            t += stall;
        }
    }
    // Host-Lockout NMA: the accelerator holds the rank.
    const Tick ext_lock =
        ext_lock_until_[std::size_t(coord.channel)
                            * map_.ranksPerChannel()
                        + coord.rank];
    if (ext_lock > t) {
        stats_.extLockStallTicks += ext_lock - t;
        t = ext_lock;
    }

    // Open-page policy: row hit needs CAS only; a miss precharges
    // the open row (if any) and activates the new one.
    const std::size_t bank_idx =
        (std::size_t(coord.channel) * map_.ranksPerChannel()
         + coord.rank) * map_.banksPerRank() + coord.bank;
    Tick access = dev.tCL;
    if (open_row_[bank_idx] == static_cast<std::int64_t>(coord.row)) {
        ++stats_.rowHits;
    } else {
        ++stats_.rowMisses;
        access += dev.tRCD;
        if (open_row_[bank_idx] >= 0)
            access += dev.tRP;
        open_row_[bank_idx] = coord.row;
        // Each row miss is an ACT: feed the RAA counters.
        if (refresh_)
            refresh_->noteActivates(coord.rank, coord.bank, 1);
    }

    // 128 B cross the rank per tBURST (paper Sec. 5: 32 bursts move
    // a 4 KiB page).
    const std::uint32_t bursts =
        (chunk.size + cfg_.bankInterleave - 1) / cfg_.bankInterleave;
    const Tick transfer = dev.tBURST * bursts;

    const Tick done = t + access + transfer;
    stats_.busyTicks += done - start;
    if (chunk.isWrite) {
        ++stats_.writes;
        stats_.bytesWritten += chunk.size;
    } else {
        ++stats_.reads;
        stats_.bytesRead += chunk.size;
    }
    return done;
}

double
MemCtrl::busFraction(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(stats_.busyTicks)
        / (static_cast<double>(elapsed) * cfg_.channels);
}

std::size_t
MemCtrl::pendingRequests() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

void
MemCtrl::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "reads", &stats_.reads);
    r.counter(p + "writes", &stats_.writes);
    r.counter(p + "bytesRead", &stats_.bytesRead);
    r.counter(p + "bytesWritten", &stats_.bytesWritten);
    r.counter(p + "rowHits", &stats_.rowHits);
    r.counter(p + "rowMisses", &stats_.rowMisses);
    r.counter(p + "frfcfsBypasses", &stats_.frfcfsBypasses,
              "row hits served out of order");
    r.counter(p + "busyTicks", &stats_.busyTicks,
              "data-bus occupancy, all channels");
    r.counter(p + "refreshStallTicks", &stats_.refreshStallTicks,
              "waited on tRFC locks");
    r.counter(p + "extLockStallTicks", &stats_.extLockStallTicks,
              "waited on NMA rank lockouts");
    r.counter(p + "queueTicks", &stats_.queueTicks,
              "total queueing delay");
    r.derived(p + "rowHitRate",
              [this] { return stats_.rowHitRate(); });
}

} // namespace dram
} // namespace xfm
