/**
 * @file
 * Sparse backing store for simulated physical memory.
 *
 * Frames are allocated on first write so multi-terabyte SFM address
 * spaces stay cheap to simulate. Reads of untouched memory return
 * zeros, matching freshly-initialised DRAM contents in practice.
 */

#ifndef XFM_DRAM_PHYS_MEM_HH
#define XFM_DRAM_PHYS_MEM_HH

#include <cstdint>
#include <unordered_map>

#include "common/units.hh"
#include "compress/compressor.hh"

namespace xfm
{
namespace dram
{

/** Sparse byte-addressable physical memory. */
class PhysMem
{
  public:
    explicit PhysMem(std::uint64_t capacity) : capacity_(capacity) {}

    std::uint64_t capacityBytes() const { return capacity_; }

    /** Read @p size bytes at @p addr (zero-filled if untouched). */
    Bytes read(std::uint64_t addr, std::size_t size) const;

    /**
     * Read @p size bytes at @p addr into @p out (resized to fit).
     * Reuses @p out's capacity, so hot paths holding a scratch
     * buffer read without allocating.
     */
    void read(std::uint64_t addr, std::size_t size, Bytes &out) const;

    /** Write @p data at @p addr. */
    void write(std::uint64_t addr, ByteSpan data);

    /** Fill a range with a value (cheap page clear). */
    void fill(std::uint64_t addr, std::size_t size, std::uint8_t value);

    /** Number of frames actually materialised. */
    std::size_t residentFrames() const { return frames_.size(); }

  private:
    static constexpr std::uint64_t frameBytes = pageBytes;

    std::uint64_t capacity_;
    std::unordered_map<std::uint64_t, Bytes> frames_;
};

} // namespace dram
} // namespace xfm

#endif // XFM_DRAM_PHYS_MEM_HH
