#include "system.hh"

#include "common/logging.hh"

namespace xfm
{
namespace system
{

System::System(std::string name, EventQueue &eq,
               const SystemConfig &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    XFM_ASSERT(cfg_.pages > 0, "system needs at least one page");

    host_phys_ = std::make_unique<dram::PhysMem>(
        cfg_.hostMem.totalCapacityBytes());
    host_refresh_ = std::make_unique<dram::RefreshController>(
        this->name() + ".hostRefresh", eq, cfg_.hostMem.rank.device,
        cfg_.hostMem.dimmsPerChannel * cfg_.hostMem.ranksPerDimm);
    host_ctrl_ = std::make_unique<dram::MemCtrl>(
        this->name() + ".hostCtrl", eq, cfg_.hostMem,
        host_refresh_.get());

    if (cfg_.backend == BackendKind::BaselineCpu) {
        sfm::CpuBackendConfig bcfg;
        bcfg.localBase = 0;
        bcfg.localPages = cfg_.pages;
        bcfg.sfmBase = cfg_.pages * pageBytes;
        bcfg.sfmBytes = cfg_.sfmBytes;
        bcfg.algorithm = cfg_.algorithm;
        cpu_backend_ = std::make_unique<sfm::CpuSfmBackend>(
            this->name() + ".backend", eq, bcfg, *host_phys_,
            host_ctrl_.get());
        backend_ = cpu_backend_.get();
    } else {
        xfmsys::XfmSystemConfig xcfg;
        xcfg.numDimms = cfg_.xfmDimms;
        xcfg.dimmMem.rank.device = dram::ddr5Device32Gb();
        xcfg.dimmMem.channels = 1;
        xcfg.dimmMem.dimmsPerChannel = 1;
        xcfg.dimmMem.ranksPerDimm = 1;
        xcfg.localPages = cfg_.pages;
        xcfg.sfmBase = gib(1);
        xcfg.sfmBytes = cfg_.sfmBytes;
        xcfg.algorithm = cfg_.algorithm;
        xcfg.device = cfg_.xfmDevice;
        xcfg.faults = cfg_.faultPlan;
        xcfg.retry = cfg_.retry;
        xfm_backend_ = std::make_unique<xfmsys::XfmBackend>(
            this->name() + ".backend", eq, xcfg, host_ctrl_.get());
        backend_ = xfm_backend_.get();
    }

    controller_ = std::make_unique<sfm::SfmController>(
        this->name() + ".controller", eq, cfg_.controller, *backend_,
        cfg_.pages);
    // Normalise the promotion rate against the provisioned SFM
    // capacity scaled by a typical 3x compression ratio (capacity
    // in *uncompressed* page terms, as the paper's metric uses).
    const std::uint64_t far_capacity = 3
        * (cfg_.backend == BackendKind::Xfm
               ? cfg_.sfmBytes * cfg_.xfmDimms
               : cfg_.sfmBytes);
    promotions_ = std::make_unique<workload::PromotionTracker>(
        far_capacity);
}

double
System::promotionRate()
{
    // Swap-ins since the last sample, attributed to "now": fine at
    // the minute-granularity the metric is defined over.
    const std::uint64_t swap_ins = backend_->stats().swapIns;
    if (swap_ins > last_swap_ins_) {
        promotions_->recordPromotion(
            curTick(), (swap_ins - last_swap_ins_) * pageBytes);
        last_swap_ins_ = swap_ins;
    }
    return promotions_->rate(curTick());
}

void
System::start()
{
    host_refresh_->start();
    if (xfm_backend_)
        xfm_backend_->start();
    controller_->start();
}

void
System::writePage(sfm::VirtPage page, ByteSpan data)
{
    if (xfm_backend_) {
        xfm_backend_->writePage(page, data);
    } else {
        XFM_ASSERT(data.size() == pageBytes, "need a full page");
        host_phys_->write(cpu_backend_->frameAddr(page), data);
    }
}

Bytes
System::readPage(sfm::VirtPage page) const
{
    if (xfm_backend_)
        return xfm_backend_->readPage(page);
    return host_phys_->read(cpu_backend_->frameAddr(page), pageBytes);
}

bool
System::access(sfm::VirtPage page)
{
    // Application DRAM traffic through the host channels.
    const std::uint64_t addr = (page * pageBytes)
        % cfg_.hostMem.totalCapacityBytes();
    host_ctrl_->submit({addr, cfg_.accessBytes, false, nullptr});
    app_bytes_ += cfg_.accessBytes;
    return controller_->recordAccess(page);
}

std::uint64_t
System::sfmHostBytes() const
{
    const auto &ms = host_ctrl_->stats();
    const std::uint64_t total = ms.bytesRead + ms.bytesWritten;
    return total >= app_bytes_ ? total - app_bytes_ : 0;
}

stats::Group
System::statsGroup() const
{
    stats::Group g(name());
    const auto &bs = backend_->stats();
    const auto &cs = controller_->stats();
    const auto &ms = host_ctrl_->stats();
    g.add("pages_far", backend_->farPageCount());
    g.add("stored_compressed_bytes",
          backend_->storedCompressedBytes());
    g.add("swap_outs", bs.swapOuts);
    g.add("swap_ins", bs.swapIns);
    g.add("cpu_swap_fraction", bs.cpuFraction());
    g.add("cpu_mcycles", bs.cpuCycles / 1000000);
    g.add("demand_faults", cs.demandFaults);
    g.add("prefetch_hits", cs.prefetchHits);
    g.add("host_bytes_total", ms.bytesRead + ms.bytesWritten);
    g.add("host_bytes_app", app_bytes_);
    g.add("host_bytes_sfm", sfmHostBytes(),
          "channel traffic caused by SFM operations");
    g.add("host_row_hit_rate", ms.rowHitRate());
    g.add("promotion_rate",
          const_cast<System *>(this)->promotionRate(),
          "fraction of far capacity promoted per minute");
    if (xfm_backend_) {
        const auto &xs = xfm_backend_->xfmStats();
        g.add("offloaded_swap_outs", xs.offloadedSwapOuts);
        g.add("offloaded_swap_ins", xs.offloadedSwapIns);
        g.add("fallbacks", xs.fallbackCapacity + xs.fallbackDeadline
                               + xs.fallbackAlloc);
        g.add("offload_retries", xs.offloadRetries);
        g.add("ecc_quarantines", xs.eccQuarantines);
        g.add("fault_injections",
              xfm_backend_->faultInjector().totalInjections());
    }
    return g;
}

} // namespace system
} // namespace xfm
