#include "system.hh"

#include "common/logging.hh"

namespace xfm
{
namespace system
{

System::System(std::string name, EventQueue &eq,
               const SystemConfig &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    XFM_ASSERT(cfg_.pages > 0, "system needs at least one page");

    // Host-side components (controller, refresh, SFM control plane)
    // deliberately stay on the global event domain (shard 0): they
    // interleave with every DIMM's traffic, so pinning them to one
    // shard keeps the conservative window barrier simple
    // (DESIGN.md §13). Per-DIMM domains are assigned inside
    // XfmBackend.
    host_phys_ = std::make_unique<dram::PhysMem>(
        cfg_.hostMem.totalCapacityBytes());
    host_refresh_ = std::make_unique<dram::RefreshController>(
        this->name() + ".hostRefresh", eq, cfg_.hostMem.rank.device,
        cfg_.hostMem.dimmsPerChannel * cfg_.hostMem.ranksPerDimm);
    host_ctrl_ = std::make_unique<dram::MemCtrl>(
        this->name() + ".hostCtrl", eq, cfg_.hostMem,
        host_refresh_.get());

    if (cfg_.backend == BackendKind::BaselineCpu) {
        sfm::CpuBackendConfig bcfg;
        bcfg.localBase = 0;
        bcfg.localPages = cfg_.pages;
        bcfg.sfmBase = cfg_.pages * pageBytes;
        bcfg.sfmBytes = cfg_.sfmBytes;
        bcfg.algorithm = cfg_.algorithm;
        cpu_backend_ = std::make_unique<sfm::CpuSfmBackend>(
            this->name() + ".backend", eq, bcfg, *host_phys_,
            host_ctrl_.get());
        backend_ = cpu_backend_.get();
    } else {
        xfmsys::XfmSystemConfig xcfg;
        xcfg.numDimms = cfg_.xfmDimms;
        xcfg.dimmMem.rank.device = cfg_.dimmDevice;
        xcfg.dimmMem.channels = 1;
        xcfg.dimmMem.dimmsPerChannel = 1;
        xcfg.dimmMem.ranksPerDimm = 1;
        xcfg.localPages = cfg_.pages;
        xcfg.sfmBase = gib(1);
        xcfg.sfmBytes = cfg_.sfmBytes;
        xcfg.algorithm = cfg_.algorithm;
        xcfg.device = cfg_.xfmDevice;
        xcfg.faults = cfg_.faultPlan;
        xcfg.retry = cfg_.retry;
        xcfg.health = cfg_.health;
        xcfg.quarantineCap = cfg_.quarantineCap;
        xcfg.workers = cfg_.workers;
        xcfg.shardDict = cfg_.shardDict;
        xcfg.dictBytes = cfg_.dictBytes;
        xfm_backend_ = std::make_unique<xfmsys::XfmBackend>(
            this->name() + ".backend", eq, xcfg, host_ctrl_.get());
        backend_ = xfm_backend_.get();
    }

    if (cfg_.tier.enabled) {
        // Interpose the tier governor between the control plane and
        // the concrete backend: the controller keeps seeing one
        // SfmBackend, but demotions now route NEAR -> XFM or
        // NEAR -> DFM and the spill scan drains cold XFM pages.
        tier_mgr_ = std::make_unique<sfm::TierManager>(
            this->name() + ".tiers", eq, cfg_.tier, *backend_,
            cfg_.pages);
        backend_ = tier_mgr_.get();
    }

    controller_ = std::make_unique<sfm::SfmController>(
        this->name() + ".controller", eq, cfg_.controller, *backend_,
        cfg_.pages);
    // Normalise the promotion rate against the provisioned SFM
    // capacity scaled by a typical 3x compression ratio (capacity
    // in *uncompressed* page terms, as the paper's metric uses).
    const std::uint64_t far_capacity = 3
        * (cfg_.backend == BackendKind::Xfm
               ? cfg_.sfmBytes * cfg_.xfmDimms
               : cfg_.sfmBytes);
    promotions_ = std::make_unique<workload::PromotionTracker>(
        far_capacity);
    registerMetrics();
}

double
System::promotionRate()
{
    // Swap-ins since the last sample, attributed to "now": fine at
    // the minute-granularity the metric is defined over.
    const std::uint64_t swap_ins = backend_->stats().swapIns;
    if (swap_ins > last_swap_ins_) {
        promotions_->recordPromotion(
            curTick(), (swap_ins - last_swap_ins_) * pageBytes);
        last_swap_ins_ = swap_ins;
    }
    return promotions_->rate(curTick());
}

void
System::start()
{
    host_refresh_->start();
    if (xfm_backend_)
        xfm_backend_->start();
    if (tier_mgr_)
        tier_mgr_->start();
    controller_->start();
}

std::uint64_t
System::faultInjections() const
{
    std::uint64_t total = 0;
    if (xfm_backend_)
        total += xfm_backend_->faultInjector().totalInjections();
    if (tier_mgr_)
        total += tier_mgr_->spill().faultInjector().totalInjections();
    return total;
}

void
System::writePage(sfm::VirtPage page, ByteSpan data)
{
    if (xfm_backend_) {
        xfm_backend_->writePage(page, data);
    } else {
        XFM_ASSERT(data.size() == pageBytes, "need a full page");
        host_phys_->write(cpu_backend_->frameAddr(page), data);
    }
}

Bytes
System::readPage(sfm::VirtPage page) const
{
    if (xfm_backend_)
        return xfm_backend_->readPage(page);
    return host_phys_->read(cpu_backend_->frameAddr(page), pageBytes);
}

bool
System::access(sfm::VirtPage page)
{
    // Application DRAM traffic through the host channels.
    const std::uint64_t addr = (page * pageBytes)
        % cfg_.hostMem.totalCapacityBytes();
    host_ctrl_->submit({addr, cfg_.accessBytes, false, nullptr});
    app_bytes_ += cfg_.accessBytes;
    return controller_->recordAccess(page);
}

std::uint64_t
System::sfmHostBytes() const
{
    const auto &ms = host_ctrl_->stats();
    const std::uint64_t total = ms.bytesRead + ms.bytesWritten;
    return total >= app_bytes_ ? total - app_bytes_ : 0;
}

void
System::registerMetrics()
{
    const std::string p = name() + ".";
    // Headline gauges of the whole stack; the layers below register
    // their own counters under their SimObject names.
    metrics_.derived(p + "pagesFar",
                     [this] {
                         return static_cast<double>(
                             backend_->farPageCount());
                     });
    metrics_.derived(p + "storedCompressedBytes",
                     [this] {
                         return static_cast<double>(
                             backend_->storedCompressedBytes());
                     });
    metrics_.derived(p + "cpuSwapFraction",
                     [this] {
                         return backend_->stats().cpuFraction();
                     },
                     "share of swaps the CPU served");
    metrics_.derived(p + "hostBytesApp",
                     [this] {
                         return static_cast<double>(app_bytes_);
                     },
                     "channel traffic from the application");
    metrics_.derived(p + "hostBytesSfm",
                     [this] {
                         return static_cast<double>(sfmHostBytes());
                     },
                     "channel traffic caused by SFM operations");
    metrics_.derived(p + "promotionRate",
                     [this] { return promotionRate(); },
                     "fraction of far capacity promoted per minute");
    host_ctrl_->registerMetrics(metrics_);
    controller_->registerMetrics(metrics_);
    if (cpu_backend_)
        cpu_backend_->registerMetrics(metrics_);
    if (xfm_backend_)
        xfm_backend_->registerMetrics(metrics_);
    if (tier_mgr_)
        tier_mgr_->registerMetrics(metrics_);
}

void
System::setTracer(obs::Tracer *t)
{
    if (cpu_backend_)
        cpu_backend_->setTracer(t);
    if (xfm_backend_)
        xfm_backend_->setTracer(t);
    if (tier_mgr_)
        tier_mgr_->setTracer(t);
}

} // namespace system
} // namespace xfm
