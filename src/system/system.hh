/**
 * @file
 * Full-system composition: host memory controller + SFM stack.
 *
 * Mirrors the paper's Sec. 7 emulation methodology: an application
 * issues page accesses; the SFM controller demotes cold pages and
 * promotes faulting ones through either the zswap-style CPU backend
 * or the XFM backend; all CPU-visible DRAM traffic (application
 * accesses, CPU (de)compression, fallbacks) flows through a single
 * host MemCtrl so channel utilisation can be compared end to end.
 */

#ifndef XFM_SYSTEM_SYSTEM_HH
#define XFM_SYSTEM_SYSTEM_HH

#include <memory>
#include <optional>

#include "common/stats.hh"
#include "dram/mem_ctrl.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "sfm/controller.hh"
#include "sfm/cpu_backend.hh"
#include "sfm/tier_manager.hh"
#include "workload/promotion_tracker.hh"
#include "sim/sim_object.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace system
{

/** Which SFM implementation the system runs. */
enum class BackendKind
{
    BaselineCpu,  ///< zswap-style, CPU does everything
    Xfm,          ///< near-memory offload with CPU fallback
};

/** Full-system configuration. */
struct SystemConfig
{
    BackendKind backend = BackendKind::Xfm;

    /** Host-visible memory system (channels the CPU contends on). */
    dram::MemSystemConfig hostMem = dram::defaultMemSystem();

    /** Virtual pages of the modelled application. */
    std::uint64_t pages = 1024;
    /** SFM region size (per DIMM for XFM; total for baseline). */
    std::uint64_t sfmBytes = mib(16);
    compress::Algorithm algorithm = compress::Algorithm::ZstdLike;

    /** XFM DIMM parameters (used when backend == Xfm). */
    std::size_t xfmDimms = 4;
    nma::XfmDeviceConfig xfmDevice{};
    /**
     * DDR device of the XFM DIMMs — carries the refresh-realism
     * knobs (refreshMode, RFM thresholds, HiRA). The default is the
     * same ddr5Device32Gb() the system always used, so untouched
     * configs stay byte-identical.
     */
    dram::DeviceConfig dimmDevice = dram::ddr5Device32Gb();

    sfm::ControllerConfig controller{};

    /** Bytes of host DRAM traffic per application page access. */
    std::uint32_t accessBytes = 64;

    /**
     * Shard-compression worker count for the XFM backend's CPU
     * paths (1 = fully inline; results are byte-identical for any
     * value — see WorkerPool).
     */
    std::size_t workers = 1;

    /** Multi-channel preset dictionaries for the XFM backend
     *  (DESIGN.md §16); off by default. */
    bool shardDict = false;
    /** Sampled dictionary size in bytes (dict mode only). */
    std::size_t dictBytes = 2048;

    /** Fault scenario for the XFM backend (disarmed by default). */
    fault::FaultPlan faultPlan{};
    /** Driver retry policy for transient injected faults. */
    fault::RetryPolicy retry{};
    /** Health-monitor tuning applied to every engine, SPM bank,
     *  doorbell, and channel shard (disabled by default). */
    health::HealthConfig health{};
    /** Quarantine ledger cap for the XFM backend (0 = unbounded). */
    std::size_t quarantineCap = 0;

    /**
     * Three-tier hierarchy (NEAR/XFM/DFM). Disabled by default:
     * `tier.enabled = 0` builds the exact two-state stack and is
     * byte-identical to pre-tiering output.
     */
    sfm::TierConfig tier{};
};

/**
 * One simulated machine running an SFM deployment.
 */
class System : public SimObject
{
  public:
    System(std::string name, EventQueue &eq, const SystemConfig &cfg);

    /** Begin refresh + control-plane activity. */
    void start();

    /** Store application data into a page. */
    void writePage(sfm::VirtPage page, ByteSpan data);
    /** Fetch application data from a page (must be Local). */
    Bytes readPage(sfm::VirtPage page) const;

    /**
     * The application touches @p page: the access stamps the
     * controller, faults if the page is Far, and issues
     * `accessBytes` of host DRAM traffic.
     *
     * @retval true local hit.
     */
    bool access(sfm::VirtPage page);

    sfm::SfmBackend &backend() { return *backend_; }
    sfm::SfmController &controller() { return *controller_; }
    dram::MemCtrl &memCtrl() { return *host_ctrl_; }
    const SystemConfig &config() const { return cfg_; }

    /** Tier hierarchy governor; null when `tier.enabled = 0`. */
    sfm::TierManager *tierManager() { return tier_mgr_.get(); }
    const sfm::TierManager *tierManager() const
    {
        return tier_mgr_.get();
    }

    /** Total injected faults across every armed injector (XFM
     *  device sites plus the DFM spill link when tiering is on). */
    std::uint64_t faultInjections() const;

    /** Host-channel bytes moved by SFM work (not the app). */
    std::uint64_t sfmHostBytes() const;

    /** Observed promotion rate (fraction of far capacity/minute). */
    double promotionRate();

    /**
     * The system-wide metric registry: headline gauges under
     * `<name()>.*` plus every layer's metrics (host controller,
     * backend, per-DIMM devices/drivers, fault sites, control
     * plane), all registered by the constructor.
     */
    obs::MetricRegistry &metrics() { return metrics_; }
    const obs::MetricRegistry &metrics() const { return metrics_; }

    /** Attach a span tracer to the swap path (null detaches). */
    void setTracer(obs::Tracer *t);

  private:
    void registerMetrics();

    SystemConfig cfg_;
    std::unique_ptr<dram::PhysMem> host_phys_;
    std::unique_ptr<dram::RefreshController> host_refresh_;
    std::unique_ptr<dram::MemCtrl> host_ctrl_;

    std::unique_ptr<sfm::CpuSfmBackend> cpu_backend_;
    std::unique_ptr<xfmsys::XfmBackend> xfm_backend_;
    /** Wraps the concrete backend when `tier.enabled = 1`. */
    std::unique_ptr<sfm::TierManager> tier_mgr_;
    sfm::SfmBackend *backend_ = nullptr;
    std::unique_ptr<sfm::SfmController> controller_;

    /** App traffic accounting, to subtract from channel totals. */
    std::uint64_t app_bytes_ = 0;
    /** Swap-in (promotion) meter, Sec. 2.1's metric. */
    std::unique_ptr<workload::PromotionTracker> promotions_;
    std::uint64_t last_swap_ins_ = 0;
    obs::MetricRegistry metrics_;
};

} // namespace system
} // namespace xfm

#endif // XFM_SYSTEM_SYSTEM_HH
