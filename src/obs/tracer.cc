#include "tracer.hh"

#include <cstdio>

#include "common/logging.hh"

namespace xfm
{
namespace obs
{

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::SwapOut: return "swap_out";
      case Stage::SwapIn: return "swap_in";
      case Stage::Submit: return "submit";
      case Stage::Queue: return "queue";
      case Stage::WindowWait: return "window_wait";
      case Stage::Classify: return "classify";
      case Stage::Engine: return "engine";
      case Stage::SpmStage: return "spm_stage";
      case Stage::Writeback: return "writeback";
      case Stage::CpuCompute: return "cpu_compute";
      case Stage::DfmLink: return "dfm_link";
      case Stage::Fallback: return "fallback";
      case Stage::Complete: return "complete";
      case Stage::Health: return "health";
      case Stage::Shed: return "shed";
      case Stage::SqEnqueue: return "sq_enqueue";
      case Stage::CqReap: return "cq_reap";
      case Stage::TierShift: return "tier_shift";
      case Stage::RefPb: return "refpb";
      case Stage::Rfm: return "rfm";
      case Stage::SlotSteal: return "slot_steal";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity)
{
    XFM_ASSERT(capacity_ > 0, "tracer capacity must be positive");
    ring_.reserve(capacity_);
}

std::uint64_t
Tracer::begin()
{
    return next_req_++;
}

void
Tracer::record(std::uint64_t req, Stage stage, Tick start, Tick end,
               std::uint64_t arg)
{
    XFM_ASSERT(end >= start, "trace span ends before it starts");
    TraceEvent ev;
    ev.req = req;
    ev.stage = stage;
    ev.start = start;
    ev.end = end;
    ev.arg = arg;
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        ring_[head_] = ev;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::string
Tracer::toJsonLines() const
{
    std::string out;
    char buf[256];
    for (const auto &ev : events()) {
        std::snprintf(buf, sizeof(buf),
                      "{\"req\": %llu, \"stage\": \"%s\", "
                      "\"start\": %llu, \"end\": %llu, "
                      "\"arg\": %llu}\n",
                      (unsigned long long)ev.req, stageName(ev.stage),
                      (unsigned long long)ev.start,
                      (unsigned long long)ev.end,
                      (unsigned long long)ev.arg);
        out += buf;
    }
    return out;
}

std::string
Tracer::toChromeTrace() const
{
    // Ticks are picoseconds; Chrome wants microseconds. Emit with
    // enough digits to round-trip sub-us spans.
    std::string out = "[";
    char buf[320];
    bool first = true;
    for (const auto &ev : events()) {
        std::snprintf(
            buf, sizeof(buf),
            "%s\n  {\"name\": \"%s\", \"cat\": \"xfm\", "
            "\"ph\": \"X\", \"pid\": 1, \"tid\": %llu, "
            "\"ts\": %.6f, \"dur\": %.6f, "
            "\"args\": {\"arg\": %llu}}",
            first ? "" : ",", stageName(ev.stage),
            (unsigned long long)ev.req, ev.start / 1e6,
            (ev.end - ev.start) / 1e6, (unsigned long long)ev.arg);
        first = false;
        out += buf;
    }
    out += "\n]\n";
    return out;
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    next_req_ = 1;
}

} // namespace obs
} // namespace xfm
