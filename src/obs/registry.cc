#include "registry.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace xfm
{
namespace obs
{

namespace
{

/** Locale-free, round-trippable double formatting. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Compact double formatting for the human-facing table. */
std::string
formatDoubleShort(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

bool
Snapshot::has(const std::string &name) const
{
    return std::binary_search(
        leaves_.begin(), leaves_.end(), name,
        [](const auto &a, const auto &b) {
            if constexpr (std::is_same_v<std::decay_t<decltype(a)>,
                                         std::string>)
                return a < b.name;
            else
                return a.name < b;
        });
}

static const SnapshotLeaf *
findLeaf(const std::vector<SnapshotLeaf> &leaves,
         const std::string &name)
{
    auto it = std::lower_bound(leaves.begin(), leaves.end(), name,
                               [](const SnapshotLeaf &l,
                                  const std::string &n) {
        return l.name < n;
    });
    if (it == leaves.end() || it->name != name)
        return nullptr;
    return &*it;
}

std::uint64_t
Snapshot::u64(const std::string &name) const
{
    const SnapshotLeaf *l = findLeaf(leaves_, name);
    if (!l)
        fatal("snapshot has no metric '", name, "'");
    return l->isInt ? l->u : static_cast<std::uint64_t>(l->d);
}

double
Snapshot::value(const std::string &name) const
{
    const SnapshotLeaf *l = findLeaf(leaves_, name);
    if (!l)
        fatal("snapshot has no metric '", name, "'");
    return l->asDouble();
}

Snapshot
Snapshot::delta(const Snapshot &base) const
{
    Snapshot out = *this;
    for (auto &leaf : out.leaves_) {
        if (!leaf.monotone)
            continue;
        const SnapshotLeaf *b = findLeaf(base.leaves_, leaf.name);
        if (!b)
            continue;
        if (leaf.isInt)
            leaf.u = leaf.u >= b->u ? leaf.u - b->u : 0;
        else
            leaf.d -= b->d;
    }
    return out;
}

std::string
Snapshot::renderText() const
{
    std::size_t name_width = 0;
    std::size_t val_width = 0;
    std::vector<std::string> values;
    values.reserve(leaves_.size());
    for (const auto &l : leaves_) {
        values.push_back(l.isInt ? std::to_string(l.u)
                                 : formatDoubleShort(l.d));
        name_width = std::max(name_width, l.name.size());
        val_width = std::max(val_width, values.back().size());
    }
    std::ostringstream os;
    for (std::size_t i = 0; i < leaves_.size(); ++i) {
        const auto &l = leaves_[i];
        os << l.name << std::string(name_width - l.name.size() + 2, ' ')
           << std::string(val_width - values[i].size(), ' ')
           << values[i];
        if (!l.desc.empty())
            os << "  # " << l.desc;
        os << "\n";
    }
    return os.str();
}

std::string
Snapshot::toJson() const
{
    std::string out = "{\n  \"schema\": ";
    appendJsonString(out, snapshotSchema);
    out += ",\n  \"metrics\": {";
    bool first = true;
    for (const auto &l : leaves_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, l.name);
        out += ": ";
        out += l.isInt ? std::to_string(l.u) : formatDouble(l.d);
    }
    out += "\n  }\n}\n";
    return out;
}

void
MetricRegistry::insert(const std::string &name, Entry e)
{
    XFM_ASSERT(!name.empty(), "metric with empty name");
    if (!entries_.emplace(name, std::move(e)).second)
        fatal("metric '", name, "' registered twice");
}

void
MetricRegistry::counter(const std::string &name, std::uint64_t *v,
                        std::string desc)
{
    Entry e;
    e.kind = Entry::Kind::Counter;
    e.u = v;
    e.desc = std::move(desc);
    insert(name, std::move(e));
}

void
MetricRegistry::gauge(const std::string &name, double *v,
                      std::string desc)
{
    Entry e;
    e.kind = Entry::Kind::Gauge;
    e.g = v;
    e.desc = std::move(desc);
    insert(name, std::move(e));
}

void
MetricRegistry::derived(const std::string &name,
                        std::function<double()> fn, std::string desc)
{
    Entry e;
    e.kind = Entry::Kind::Derived;
    e.fn = std::move(fn);
    e.desc = std::move(desc);
    insert(name, std::move(e));
}

void
MetricRegistry::average(const std::string &name, stats::Average *a,
                        std::string desc)
{
    Entry e;
    e.kind = Entry::Kind::Average;
    e.avg = a;
    e.desc = std::move(desc);
    insert(name, std::move(e));
}

void
MetricRegistry::histogram(const std::string &name, stats::Histogram *h,
                          std::string desc)
{
    Entry e;
    e.kind = Entry::Kind::Histogram;
    e.hist = h;
    e.desc = std::move(desc);
    insert(name, std::move(e));
}

bool
MetricRegistry::contains(const std::string &name) const
{
    return entries_.count(name) > 0;
}

Snapshot
MetricRegistry::snapshot() const
{
    Snapshot s;
    auto addInt = [&s](std::string name, std::uint64_t v,
                       const std::string &desc, bool monotone) {
        SnapshotLeaf l;
        l.name = std::move(name);
        l.isInt = true;
        l.monotone = monotone;
        l.u = v;
        l.desc = desc;
        s.leaves_.push_back(std::move(l));
    };
    auto addDouble = [&s](std::string name, double v,
                          const std::string &desc, bool monotone) {
        SnapshotLeaf l;
        l.name = std::move(name);
        l.isInt = false;
        l.monotone = monotone;
        l.d = v;
        l.desc = desc;
        s.leaves_.push_back(std::move(l));
    };

    for (const auto &[name, e] : entries_) {
        switch (e.kind) {
          case Entry::Kind::Counter:
            addInt(name, *e.u, e.desc, true);
            break;
          case Entry::Kind::Gauge:
            addDouble(name, *e.g, e.desc, false);
            break;
          case Entry::Kind::Derived:
            addDouble(name, e.fn(), e.desc, false);
            break;
          case Entry::Kind::Average:
            addInt(name + ".count", e.avg->count(), e.desc, true);
            addDouble(name + ".mean", e.avg->mean(), "", false);
            addDouble(name + ".min", e.avg->min(), "", false);
            addDouble(name + ".max", e.avg->max(), "", false);
            break;
          case Entry::Kind::Histogram:
            addInt(name + ".count", e.hist->total(), e.desc, true);
            // Out-of-range tails are first-class: they participate
            // in the percentile rank math and are exported here.
            addInt(name + ".underflow", e.hist->underflow(), "",
                   true);
            addInt(name + ".overflow", e.hist->overflow(), "", true);
            addDouble(name + ".p50", e.hist->percentile(0.50), "",
                      false);
            addDouble(name + ".p90", e.hist->percentile(0.90), "",
                      false);
            addDouble(name + ".p99", e.hist->percentile(0.99), "",
                      false);
            break;
        }
    }
    std::sort(s.leaves_.begin(), s.leaves_.end(),
              [](const SnapshotLeaf &a, const SnapshotLeaf &b) {
        return a.name < b.name;
    });
    return s;
}

void
MetricRegistry::reset()
{
    for (auto &[name, e] : entries_) {
        switch (e.kind) {
          case Entry::Kind::Counter: *e.u = 0; break;
          case Entry::Kind::Gauge: *e.g = 0.0; break;
          case Entry::Kind::Derived: break;
          case Entry::Kind::Average: e.avg->reset(); break;
          case Entry::Kind::Histogram: e.hist->reset(); break;
        }
    }
}

} // namespace obs
} // namespace xfm
