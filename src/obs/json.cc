#include "json.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace xfm
{
namespace obs
{
namespace json
{

const Value &
Value::at(const std::string &key) const
{
    if (!isObject())
        fatal("json: at('", key, "') on non-object");
    auto it = obj_->find(key);
    if (it == obj_->end())
        fatal("json: object has no key '", key, "'");
    return it->second;
}

bool
Value::has(const std::string &key) const
{
    return isObject() && obj_->count(key) > 0;
}

Value
Value::makeNull()
{
    return Value{};
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.b_ = b;
    return v;
}

Value
Value::makeNumber(double d, bool integral, std::int64_t i)
{
    Value v;
    v.type_ = Type::Number;
    v.num_ = d;
    v.integral_ = integral;
    v.int_ = i;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(Array a)
{
    Value v;
    v.type_ = Type::ArrayT;
    v.arr_ = std::make_shared<Array>(std::move(a));
    return v;
}

Value
Value::makeObject(Object o)
{
    Value v;
    v.type_ = Type::ObjectT;
    v.obj_ = std::make_shared<Object>(std::move(o));
    return v;
}

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("bad literal, expected ") + word);
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    // UTF-8 encode the BMP code point; surrogate
                    // pairs are not needed for our exports.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() && std::isdigit(
                   static_cast<unsigned char>(text[pos])))
            ++pos;
        bool integral = true;
        if (pos < text.size() && text[pos] == '.') {
            integral = false;
            ++pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            integral = false;
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos == start ||
            (pos == start + 1 && text[start] == '-'))
            return fail("bad number");
        const std::string tok = text.substr(start, pos - start);
        const double d = std::strtod(tok.c_str(), nullptr);
        const std::int64_t i =
            integral ? std::strtoll(tok.c_str(), nullptr, 10)
                     : static_cast<std::int64_t>(d);
        out = Value::makeNumber(d, integral, i);
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            Object obj;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = Value::makeObject(std::move(obj));
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                Value v;
                if (!parseValue(v))
                    return false;
                obj.emplace(std::move(key), std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            skipWs();
            if (!expect('}'))
                return false;
            out = Value::makeObject(std::move(obj));
            return true;
        }
        if (c == '[') {
            ++pos;
            Array arr;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = Value::makeArray(std::move(arr));
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                arr.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            skipWs();
            if (!expect(']'))
                return false;
            out = Value::makeArray(std::move(arr));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true", 4))
                return false;
            out = Value::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false", 5))
                return false;
            out = Value::makeBool(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null", 4))
                return false;
            out = Value::makeNull();
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &error,
      std::size_t *consumed)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (consumed) {
        *consumed = p.pos;
    } else if (p.pos != text.size()) {
        error = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace json
} // namespace obs
} // namespace xfm
