/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Exists so the snapshot/trace exporters can be validated without an
 * external dependency: the parse-back round-trip tests and the CI
 * schema checker both consume this. It handles the full JSON grammar
 * but is tuned for small documents; not a streaming parser.
 */

#ifndef XFM_OBS_JSON_HH
#define XFM_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace xfm
{
namespace obs
{
namespace json
{

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

/** One parsed JSON value (tagged union). */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        ArrayT,
        ObjectT,
    };

    Value() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::ArrayT; }
    bool isObject() const { return type_ == Type::ObjectT; }

    bool boolean() const { return b_; }
    double number() const { return num_; }
    /** True when the source text had no '.', 'e', or sign fraction. */
    bool isIntegral() const { return integral_; }
    std::int64_t integer() const { return int_; }
    const std::string &str() const { return str_; }
    const Array &array() const { return *arr_; }
    const Object &object() const { return *obj_; }

    /** Object member access; @throws FatalError on type/key miss. */
    const Value &at(const std::string &key) const;
    bool has(const std::string &key) const;

    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double d, bool integral, std::int64_t i);
    static Value makeString(std::string s);
    static Value makeArray(Array a);
    static Value makeObject(Object o);

  private:
    Type type_ = Type::Null;
    bool b_ = false;
    double num_ = 0.0;
    bool integral_ = false;
    std::int64_t int_ = 0;
    std::string str_;
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

/**
 * Parse one JSON document.
 *
 * @param text      the document
 * @param error     set to a description on failure
 * @param consumed  bytes consumed (for JSON-lines iteration)
 * @return the value, or nullopt-like Null with error set on failure
 */
bool parse(const std::string &text, Value &out, std::string &error,
           std::size_t *consumed = nullptr);

} // namespace json
} // namespace obs
} // namespace xfm

#endif // XFM_OBS_JSON_HH
