/**
 * @file
 * MetricRegistry: the unified observability substrate.
 *
 * Every layer of the stack (dram, nma, xfm, sfm, service, fault)
 * registers its statistics here under hierarchical dotted names
 * ("svc.backend.dimm0.queueRejects"). Components keep owning the
 * underlying storage — plain counters in their *Stats structs — so
 * the hot path stays a raw integer increment; the registry holds
 * typed pointers and materializes values only when a snapshot is
 * taken. One shared text renderer and one JSON exporter replace the
 * per-layer hand-built stats tables, so human output and machine
 * export can never disagree.
 */

#ifndef XFM_OBS_REGISTRY_HH
#define XFM_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace xfm
{
namespace obs
{

/** One materialized metric value inside a Snapshot. */
struct SnapshotLeaf
{
    std::string name;
    bool isInt = true;      ///< integral (counter-like) value
    /** Monotonically increasing: subtractable in Snapshot::delta().
     *  Levels (gauges, percentiles, means) are not. */
    bool monotone = true;
    std::uint64_t u = 0;    ///< value when isInt
    double d = 0.0;         ///< value when !isInt
    std::string desc;

    double
    asDouble() const
    {
        return isInt ? static_cast<double>(u) : d;
    }
};

/**
 * A point-in-time materialization of a registry.
 *
 * Leaves are sorted by name, and all formatting is locale-free and
 * value-deterministic, so two snapshots of identical runs render and
 * export byte-identically (asserted by tests/test_determinism.cc).
 */
class Snapshot
{
  public:
    const std::vector<SnapshotLeaf> &leaves() const { return leaves_; }

    bool has(const std::string &name) const;

    /** Integral value of a leaf. @throws FatalError if missing. */
    std::uint64_t u64(const std::string &name) const;

    /** Numeric value of any leaf. @throws FatalError if missing. */
    double value(const std::string &name) const;

    /**
     * Interval view: monotone leaves become (this - base); level
     * leaves (gauges, percentiles, means) keep this snapshot's
     * value. Leaves absent from @p base pass through unchanged.
     */
    Snapshot delta(const Snapshot &base) const;

    /** The one shared text renderer (aligned name/value table). */
    std::string renderText() const;

    /** JSON export: {"schema": "...", "metrics": {name: value}}. */
    std::string toJson() const;

  private:
    friend class MetricRegistry;
    std::vector<SnapshotLeaf> leaves_;  ///< sorted by name
};

/** Schema tag emitted in (and required of) every JSON snapshot. */
inline constexpr const char *snapshotSchema = "xfm.metrics.v1";

/**
 * Named index over externally-owned metrics.
 *
 * Registration is one-time wiring (at construction of a System /
 * FarMemoryService / bench harness); name collisions are user error
 * and throw FatalError. Averages and histograms expand into several
 * leaves (.count/.mean/... and .p50/.p99/.underflow/.overflow) when
 * snapshotted.
 */
class MetricRegistry
{
  public:
    void counter(const std::string &name, std::uint64_t *v,
                 std::string desc = "");
    void gauge(const std::string &name, double *v,
               std::string desc = "");
    /** Computed level metric (rates, fractions, container sizes). */
    void derived(const std::string &name, std::function<double()> fn,
                 std::string desc = "");
    void average(const std::string &name, stats::Average *a,
                 std::string desc = "");
    void histogram(const std::string &name, stats::Histogram *h,
                   std::string desc = "");

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    Snapshot snapshot() const;
    std::string renderText() const { return snapshot().renderText(); }
    std::string toJson() const { return snapshot().toJson(); }

    /** Zero every registered counter/gauge/average/histogram
     *  (derived metrics recompute from their sources). */
    void reset();

  private:
    struct Entry
    {
        enum class Kind
        {
            Counter,
            Gauge,
            Derived,
            Average,
            Histogram,
        };
        Kind kind;
        std::uint64_t *u = nullptr;
        double *g = nullptr;
        std::function<double()> fn;
        stats::Average *avg = nullptr;
        stats::Histogram *hist = nullptr;
        std::string desc;
    };

    void insert(const std::string &name, Entry e);

    std::map<std::string, Entry> entries_;
};

} // namespace obs
} // namespace xfm

#endif // XFM_OBS_REGISTRY_HH
