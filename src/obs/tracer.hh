/**
 * @file
 * Tick-accurate swap-request tracing.
 *
 * A Tracer records spans of a swap request's lifecycle — submit,
 * queue wait, refresh-window scheduling, conditional/random
 * classification, engine compute, SPM staging, write-back, or the
 * CPU-fallback path — stamped with event-queue ticks. Events land in
 * a bounded ring buffer (oldest dropped first, drops accounted) and
 * export as JSON-lines or Chrome trace format.
 *
 * Tracing disabled is a null-pointer check on the hot path: layers
 * hold an `obs::Tracer *` that defaults to nullptr and allocate
 * nothing when it is unset.
 */

#ifndef XFM_OBS_TRACER_HH
#define XFM_OBS_TRACER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace xfm
{
namespace obs
{

/** Lifecycle stage a trace event belongs to. */
enum class Stage : std::uint8_t
{
    SwapOut,     ///< whole swap-out request (backend scope)
    SwapIn,      ///< whole swap-in request (backend scope)
    Submit,      ///< handoff to a driver/device (arg = dimm)
    Queue,       ///< wait in the Compress_Request_Queue
    WindowWait,  ///< wait for a refresh (tRFC) window slot
    Classify,    ///< access class decision (arg: 0=cond, 1=random)
    Engine,      ///< (de)compression engine busy time
    SpmStage,    ///< output resident in the scratchpad
    Writeback,   ///< SPM -> DRAM write-back transfer
    CpuCompute,  ///< CPU-fallback (de)compression
    DfmLink,     ///< disaggregated-far-memory link transfer
    Fallback,    ///< instantaneous: NMA declined (arg = reason)
    Complete,    ///< instantaneous: request settled (arg = outcome)
    Health,      ///< instantaneous: breaker transition (arg = state)
    Shed,        ///< instantaneous: overload shed toggled (arg = on)
    SqEnqueue,   ///< ring: descriptor written -> doorbell covered
    CqReap,      ///< ring: completion posted -> reaped by the driver
    TierShift,   ///< instantaneous: tier transition committed
                 ///  (arg = from << 2 | to, Tier enum values)
    RefPb,       ///< instantaneous: per-bank REFpb window opened
                 ///  (arg = bank)
    Rfm,         ///< instantaneous: RFM rode a refresh slot
                 ///  (arg = bank, or rank for all-bank REF)
    SlotSteal,   ///< instantaneous: RFM stole NMA service slots
                 ///  (arg = slots lost)
};

const char *stageName(Stage s);

/** Fallback reason codes (Stage::Fallback arg). */
enum : std::uint64_t
{
    fallbackCapacity = 0,  ///< SPM occupancy bound exceeded
    fallbackDeadline = 1,  ///< queue admission deadline infeasible
    fallbackAlloc = 2,     ///< far pool allocation failed
    fallbackWatchdog = 3,  ///< device watchdog forced an error
    fallbackBreaker = 4,   ///< circuit breaker open (component Failed)
};

/** Outcome codes (Stage::Complete arg). */
enum : std::uint64_t
{
    outcomeOffloaded = 0,  ///< serviced by the NMA
    outcomeCpu = 1,        ///< serviced by the CPU fallback
    outcomeFailed = 2,     ///< rejected / quarantined / aborted
};

/** One recorded span (start == end for instantaneous events). */
struct TraceEvent
{
    std::uint64_t req = 0;  ///< request id (Tracer::begin)
    Stage stage = Stage::SwapOut;
    Tick start = 0;
    Tick end = 0;
    std::uint64_t arg = 0;  ///< stage-specific detail
};

/**
 * Bounded, deterministic trace sink.
 *
 * Request ids are handed out sequentially so same-seed runs produce
 * byte-identical exports. The ring keeps the most recent `capacity`
 * events; everything older is dropped and counted.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 65536);

    /** Start a new request; returns its id (never 0). */
    std::uint64_t begin();

    /** Record a span [start, end] for request @p req. */
    void record(std::uint64_t req, Stage stage, Tick start, Tick end,
                std::uint64_t arg = 0);

    /** Record an instantaneous event at @p at. */
    void
    point(std::uint64_t req, Stage stage, Tick at,
          std::uint64_t arg = 0)
    {
        record(req, stage, at, at, arg);
    }

    std::size_t capacity() const { return capacity_; }
    /** Events currently retained (<= capacity). */
    std::size_t size() const { return ring_.size(); }
    /** Total events ever recorded, including dropped ones. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events evicted because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t requestsBegun() const { return next_req_ - 1; }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** One JSON object per line, oldest first. */
    std::string toJsonLines() const;

    /** Chrome trace-event format ("X" complete events, ts in us). */
    std::string toChromeTrace() const;

    void clear();

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< next overwrite slot once full
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t next_req_ = 1;
};

} // namespace obs
} // namespace xfm

#endif // XFM_OBS_TRACER_HH
