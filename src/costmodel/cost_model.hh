/**
 * @file
 * First-order cost and emission model of far-memory deployments
 * (paper Sec. 3.1, EQ1-EQ5, Fig. 3).
 *
 * Compares a software-defined far memory (SFM: CPU cycles compress
 * cold pages into local DRAM) against disaggregated far memory
 * (DFM: extra DRAM or PMem modules behind CXL/PCIe) over a server
 * deployment horizon.
 *
 * Where the paper's equations are under-specified (EQ2.2's units),
 * this model uses the physically-consistent reading: idle DIMM
 * energy = idle power x number of extra DIMMs x time.
 */

#ifndef XFM_COSTMODEL_COST_MODEL_HH
#define XFM_COSTMODEL_COST_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xfm
{
namespace costmodel
{

/** Memory technology for the DFM pool. */
enum class DfmTech
{
    Dram,
    Pmem,
};

/** Model constants (paper Sec. 3.1 values as defaults). */
struct CostParams
{
    double extraGB = 512.0;          ///< far-memory capacity
    double promotionRate = 1.0;      ///< fraction accessed per minute

    // Capital prices (calibrated so the Fig. 3 break-even points
    // land where the paper reports them: ~8.5 years vs DFM-DRAM at
    // a 100% promotion rate).
    double dramCostPerGB = 6.5;      ///< new server DDR4, $/GB
    double pmemCostPerGB = 3.25;     ///< $/GB (2x density, Sec. 3.1)
    double cpuPurchasePrice = 2000.0;

    // DIMM geometry (EQ DIMMSIZE).
    double dramDimmGB = 64.0;
    double pmemDimmGB = 512.0;

    // Operational constants.
    double electricityCostPerKWh = 0.12;   ///< [28]
    double pcieKWhPerGB = 2.44e-8;         ///< 88 pJ/B PCIe [12]
    double idleDimmWatts = 4.0;

    // CPU model: Intel Xeon E5 2670 class (Sec. 3.1).
    double cpuFreqGHz = 2.6;
    double cpuCores = 16.0;
    double cpuTdpWatts = 115.0;
    double ccPerGB = 7.65e9;         ///< avg zstd/lzo cycles per GB
    /**
     * Fraction of the per-core TDP share actually drawn while
     * (de)compressing. Compression is memory-bound, so cores run
     * well below TDP; 0.30 reproduces the paper's emission
     * break-even behaviour (no break-even within the 5-year server
     * lifetime, Fig. 3).
     */
    double cpuEnergyEfficiency = 0.30;

    // Embodied/operational emissions (Boavizta [15], map [27]).
    double emissionKgPerGBDram = 1.01;
    double emissionKgPerGBPmem = 0.62;
    double emissionKgPerCpuCore = 0.625;
    double gridGCO2PerKWh = 479.0;
};

/** Cost/emission breakdown at a point in time. */
struct CostBreakdown
{
    double capitalUSD = 0.0;
    double operationalUSD = 0.0;
    double embodiedKgCO2 = 0.0;
    double operationalKgCO2 = 0.0;

    double totalUSD() const { return capitalUSD + operationalUSD; }
    double totalKgCO2() const
    {
        return embodiedKgCO2 + operationalKgCO2;
    }
};

/**
 * The analytical model.
 */
class FarMemoryCostModel
{
  public:
    explicit FarMemoryCostModel(const CostParams &params);

    /** EQ1: GB moved in or out of far memory per minute. */
    double gbSwappedPerMin() const;

    /** EQ3.2: fraction of a CPU needed for (de)compression. */
    double cpuFractionNeeded() const;

    /** Energy to (de)compress one GB on the CPU, in kWh. */
    double energyPerGBKWh() const;

    /** EQ2/EQ4: DFM cost and emissions after @p years. */
    CostBreakdown dfm(DfmTech tech, double years) const;

    /** EQ3/EQ5: SFM cost and emissions after @p years. */
    CostBreakdown sfm(double years) const;

    /**
     * Years until the cumulative SFM cost exceeds the DFM cost
     * (cost break-even). Returns a negative value if it never
     * happens within @p horizon years.
     */
    double costBreakEvenYears(DfmTech tech,
                              double horizon = 30.0) const;

    /** Emission break-even, analogous. */
    double emissionBreakEvenYears(DfmTech tech,
                                  double horizon = 30.0) const;

    /**
     * Promotion rate above which an on-chip accelerator (QAT-like,
     * costing one management core) is cheaper than CPU compression
     * (Sec. 3.2: ~6% for a 512 GB SFM).
     */
    double acceleratorBreakEvenPromotionRate() const;

    /**
     * Average DRAM read+write bandwidth consumed by SFM swap
     * traffic, in GB/s (Fig. 1 / footnote 1: 4x the swap rate —
     * compression reads+writes plus decompression reads+writes).
     */
    double sfmMemoryBandwidthGBps() const;

    const CostParams &params() const { return params_; }

  private:
    CostParams params_;
};

/** One row of the Fig. 3 sweep. */
struct Fig3Row
{
    double years;
    double promotionRate;
    double sfmCost;       ///< normalised to DFM-DRAM cost
    double dfmDramCost;   ///< = 1 by construction at each year
    double dfmPmemCost;
    double sfmEmission;   ///< normalised to DFM-DRAM emission
    double dfmDramEmission;
    double dfmPmemEmission;
};

/** Generate the Fig. 3 series for a set of years and rates. */
std::vector<Fig3Row> fig3Sweep(const CostParams &base,
                               const std::vector<double> &years,
                               const std::vector<double> &rates);

// ----------------------------------------------- data-movement energy

/**
 * Data-movement energy comparison (paper Sec. 4.3): moving swap
 * data over on-DIMM PCB links between DRAM and the buffer-device
 * NMA instead of across the DDR channel to the CPU "cuts the
 * overall data movement energy by 69%".
 */
struct DataMovementEnergy
{
    /** DDR channel IO energy, pJ per byte (CPU-path move). */
    double ddrChannelPicojoulePerByte = 30.2;
    /** On-DIMM serial link (Wilson et al. [78]: 1.17 pJ/bit). */
    double onDimmPicojoulePerByte = 1.17 * 8.0;

    /** Fraction of movement energy saved by the on-DIMM path. */
    double
    savingsFraction() const
    {
        return 1.0
            - onDimmPicojoulePerByte / ddrChannelPicojoulePerByte;
    }

    /** Joules to move @p bytes on each path. */
    double
    cpuPathJoules(double bytes) const
    {
        return bytes * ddrChannelPicojoulePerByte * 1e-12;
    }
    double
    nmaPathJoules(double bytes) const
    {
        return bytes * onDimmPicojoulePerByte * 1e-12;
    }
};

// ------------------------------------------------------- Table 2/3 model

/** FPGA resource estimate (Table 2). */
struct FpgaUtilization
{
    std::uint64_t luts;
    std::uint64_t lutsTotal;
    std::uint64_t ffs;
    std::uint64_t ffsTotal;
    std::uint64_t bram;
    std::uint64_t bramTotal;

    double lutPercent() const
    {
        return 100.0 * static_cast<double>(luts) / lutsTotal;
    }
    double ffPercent() const
    {
        return 100.0 * static_cast<double>(ffs) / ffsTotal;
    }
    double bramPercent() const
    {
        return 100.0 * static_cast<double>(bram) / bramTotal;
    }
};

/** Power estimate (Table 3). */
struct PowerBreakdown
{
    double dynamicWatts;
    double staticWatts;
    double totalWatts() const { return dynamicWatts + staticWatts; }
    double dynamicPercent() const
    {
        return 100.0 * dynamicWatts / totalWatts();
    }
};

/**
 * Parametric overhead model of the XFM FPGA prototype.
 *
 * Resources scale with the (de)compression engine throughput and
 * the SPM size; constants are calibrated to the paper's
 * UltraScale+ implementation.
 */
FpgaUtilization estimateFpgaUtilization(double compressGBps = 1.4,
                                        double decompressGBps = 1.7,
                                        std::uint64_t spmBytes =
                                            2 * 1024 * 1024);

PowerBreakdown estimateFpgaPower(double compressGBps = 1.4,
                                 double decompressGBps = 1.7);

/**
 * DRAM modification overhead (CACTI-style first-order estimate of
 * the per-subarray row-decoder latch and LBL isolation latch,
 * Sec. 8): ~0.15% area, ~0.002% power for an 8 Gb DDR4 chip.
 */
struct DramOverhead
{
    double areaPercent;
    double powerPercent;
};

DramOverhead estimateDramOverhead(std::uint32_t subarrays_per_bank =
                                      128,
                                  std::uint32_t banks = 16);

} // namespace costmodel
} // namespace xfm

#endif // XFM_COSTMODEL_COST_MODEL_HH
