#include "cost_model.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.hh"

namespace xfm
{
namespace costmodel
{

namespace
{
constexpr double minutesPerYear = 365.25 * 24.0 * 60.0;
constexpr double hoursPerYear = 365.25 * 24.0;
} // namespace

FarMemoryCostModel::FarMemoryCostModel(const CostParams &params)
    : params_(params)
{
    XFM_ASSERT(params_.extraGB > 0, "extraGB must be positive");
    XFM_ASSERT(params_.promotionRate >= 0
                   && params_.promotionRate <= 1.0,
               "promotion rate is a fraction of far memory per "
               "minute");
}

double
FarMemoryCostModel::gbSwappedPerMin() const
{
    // EQ1.
    return params_.extraGB * params_.promotionRate;
}

double
FarMemoryCostModel::cpuFractionNeeded() const
{
    // EQ3.2-3.4.
    const double cc_needed_per_min =
        gbSwappedPerMin() * params_.ccPerGB;
    const double cc_available_per_min =
        params_.cpuFreqGHz * 1e9 * params_.cpuCores * 60.0;
    return cc_needed_per_min / cc_available_per_min;
}

double
FarMemoryCostModel::energyPerGBKWh() const
{
    // One core runs at TDP/cores while (de)compressing; a GB takes
    // ccPerGB / freq seconds of core time.
    const double core_watts = params_.cpuTdpWatts / params_.cpuCores
        * params_.cpuEnergyEfficiency;
    const double seconds_per_gb =
        params_.ccPerGB / (params_.cpuFreqGHz * 1e9);
    return core_watts * seconds_per_gb / 3.6e6;  // J -> kWh
}

CostBreakdown
FarMemoryCostModel::dfm(DfmTech tech, double years) const
{
    const double minutes = years * minutesPerYear;
    const double hours = years * hoursPerYear;
    const bool dram = tech == DfmTech::Dram;

    CostBreakdown b;
    // EQ2: upfront module purchase.
    b.capitalUSD = params_.extraGB
        * (dram ? params_.dramCostPerGB : params_.pmemCostPerGB);

    // EQ2.1: PCIe transfer energy for the swap traffic.
    const double pcie_kwh =
        params_.pcieKWhPerGB * gbSwappedPerMin() * minutes;
    // EQ2.2 (physically-consistent reading): static DIMM power.
    const double dimm_gb =
        dram ? params_.dramDimmGB : params_.pmemDimmGB;
    const double num_dimms = params_.extraGB / dimm_gb;
    const double idle_kwh =
        params_.idleDimmWatts * num_dimms * hours / 1000.0;

    b.operationalUSD =
        (pcie_kwh + idle_kwh) * params_.electricityCostPerKWh;

    // EQ4: embodied + operational emissions.
    b.embodiedKgCO2 = params_.extraGB
        * (dram ? params_.emissionKgPerGBDram
                : params_.emissionKgPerGBPmem);
    b.operationalKgCO2 =
        idle_kwh * params_.gridGCO2PerKWh / 1000.0;
    return b;
}

CostBreakdown
FarMemoryCostModel::sfm(double years) const
{
    const double minutes = years * minutesPerYear;

    CostBreakdown b;
    // EQ3.1: provisioned CPU share.
    const double cpu_fraction = cpuFractionNeeded();
    b.capitalUSD = cpu_fraction * params_.cpuPurchasePrice;

    // EQ3: compression energy.
    const double kwh =
        energyPerGBKWh() * gbSwappedPerMin() * minutes;
    b.operationalUSD = kwh * params_.electricityCostPerKWh;

    // EQ5.
    b.embodiedKgCO2 = cpu_fraction * params_.cpuCores
        * params_.emissionKgPerCpuCore;
    b.operationalKgCO2 = kwh * params_.gridGCO2PerKWh / 1000.0;
    return b;
}

namespace
{

/** Bisection on f(years) = dfm - sfm crossing from above. */
double
breakEven(const std::function<double(double)> &sfm_minus_dfm,
          double horizon)
{
    // SFM starts cheaper; find the first year the sign flips.
    if (sfm_minus_dfm(0.0) >= 0.0)
        return 0.0;
    if (sfm_minus_dfm(horizon) < 0.0)
        return -1.0;
    double lo = 0.0;
    double hi = horizon;
    for (int i = 0; i < 60; ++i) {
        const double mid = (lo + hi) / 2.0;
        if (sfm_minus_dfm(mid) < 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return (lo + hi) / 2.0;
}

} // namespace

double
FarMemoryCostModel::costBreakEvenYears(DfmTech tech,
                                       double horizon) const
{
    return breakEven(
        [this, tech](double y) {
            return sfm(y).totalUSD() - dfm(tech, y).totalUSD();
        },
        horizon);
}

double
FarMemoryCostModel::emissionBreakEvenYears(DfmTech tech,
                                           double horizon) const
{
    return breakEven(
        [this, tech](double y) {
            return sfm(y).totalKgCO2() - dfm(tech, y).totalKgCO2();
        },
        horizon);
}

double
FarMemoryCostModel::acceleratorBreakEvenPromotionRate() const
{
    // An integrated accelerator offloads all (de)compression but
    // consumes one physical core to manage the offloads (Sec. 3.2).
    // It pays off once software compression would need more than
    // that one core.
    const double one_core_fraction = 1.0 / params_.cpuCores;
    // cpuFractionNeeded is linear in the promotion rate.
    CostParams unit = params_;
    unit.promotionRate = 1.0;
    const double fraction_at_full =
        FarMemoryCostModel(unit).cpuFractionNeeded();
    return one_core_fraction / fraction_at_full;
}

double
FarMemoryCostModel::sfmMemoryBandwidthGBps() const
{
    // Footnote 1: compress reads + writes and decompress reads +
    // writes give 4x the swap rate on the DRAM bus.
    const double gbps = gbSwappedPerMin() / 60.0;
    return 4.0 * gbps;
}

std::vector<Fig3Row>
fig3Sweep(const CostParams &base, const std::vector<double> &years,
          const std::vector<double> &rates)
{
    std::vector<Fig3Row> rows;
    for (double rate : rates) {
        CostParams p = base;
        p.promotionRate = rate;
        FarMemoryCostModel model(p);
        for (double y : years) {
            Fig3Row row;
            row.years = y;
            row.promotionRate = rate;
            const auto dram = model.dfm(DfmTech::Dram, y);
            const auto pmem = model.dfm(DfmTech::Pmem, y);
            const auto s = model.sfm(y);
            const double cost_norm = dram.totalUSD();
            const double em_norm = dram.totalKgCO2();
            row.dfmDramCost = 1.0;
            row.dfmPmemCost = pmem.totalUSD() / cost_norm;
            row.sfmCost = s.totalUSD() / cost_norm;
            row.dfmDramEmission = 1.0;
            row.dfmPmemEmission = pmem.totalKgCO2() / em_norm;
            row.sfmEmission = s.totalKgCO2() / em_norm;
            rows.push_back(row);
        }
    }
    return rows;
}

FpgaUtilization
estimateFpgaUtilization(double compressGBps, double decompressGBps,
                        std::uint64_t spmBytes)
{
    // Calibrated to the paper's UltraScale+ prototype: the Deflate
    // engines dominate LUT usage (Table 2 discussion).
    FpgaUtilization u;
    u.lutsTotal = 522720;
    u.ffsTotal = 1045440;
    u.bramTotal = 984;

    const double lut_per_comp_gbps = 150000.0;
    const double lut_per_decomp_gbps = 120000.0;
    const double controller_luts = 21467.0;
    u.luts = static_cast<std::uint64_t>(
        compressGBps * lut_per_comp_gbps
        + decompressGBps * lut_per_decomp_gbps + controller_luts);

    const double ff_per_gbps = 28000.0;
    u.ffs = static_cast<std::uint64_t>(
        (compressGBps + decompressGBps) * ff_per_gbps + 7335.0);

    // 36 Kb BRAM blocks for queues and stream buffers; the bulk SPM
    // sits in the AxDIMM's separate buffer RAM, so only a slice of
    // the SPM is FPGA-resident.
    const std::uint64_t bram_bits = spmBytes / 32 * 8;
    u.bram = std::max<std::uint64_t>(bram_bits / (36 * 1024), 1) + 37;
    return u;
}

PowerBreakdown
estimateFpgaPower(double compressGBps, double decompressGBps)
{
    PowerBreakdown p;
    // Table 3: 5.718 W dynamic / 1.306 W static at 1.4/1.7 GB/s.
    const double watts_per_gbps = 5.718 / (1.4 + 1.7);
    p.dynamicWatts = watts_per_gbps * (compressGBps + decompressGBps);
    p.staticWatts = 1.306;
    return p;
}

DramOverhead
estimateDramOverhead(std::uint32_t subarrays_per_bank,
                     std::uint32_t banks)
{
    // Per subarray: a row-address latch (~17 bits) plus one LBL
    // isolation latch; relative to the cell array these are tiny.
    // Constants tuned to CACTI's 22 nm 8 Gb DDR4 result (Sec. 8).
    const double latch_area_um2 = 12.0;
    const double subarray_area_um2 = 8.0e5 / 100.0;  // per subarray
    const double area_fraction =
        latch_area_um2 / subarray_area_um2;
    DramOverhead o;
    o.areaPercent = 100.0 * area_fraction
        * 1.0;  // every subarray in every bank gets the latches
    (void)subarrays_per_bank;
    (void)banks;
    o.powerPercent = 0.002;
    // Clamp to the paper's reported figure of ~0.15%.
    o.areaPercent = std::min(o.areaPercent, 0.15);
    return o;
}

} // namespace costmodel
} // namespace xfm
