#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors, build
# everything, run the full test suite. This is the gate every change
# must pass (see ROADMAP.md).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-ci}"
jobs="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}" \
    -DCMAKE_CXX_FLAGS="-Werror"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
