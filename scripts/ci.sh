#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors, build
# everything (Release: -O2 -DNDEBUG), run the full test suite. This
# is the gate every change must pass (see ROADMAP.md).
#
# SANITIZE=1 runs the same suite under ASan+UBSan (separate build
# dir, RelWithDebInfo so stacks symbolise), with both sanitizers set
# to fail hard on any report.
#
# SANITIZE=thread builds under TSan and runs the concurrency-facing
# tests (worker pool, event kernel, sharded event core, service
# layer, worker-count determinism) plus the perf-harness and fleet
# smokes, which drive the threaded shard-compression paths and the
# sim_shards = 8 parallel window staging end to end.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

sanitize="${SANITIZE:-0}"
cxx_flags="-Werror"
build_type="${BUILD_TYPE:-Release}"
if [[ "${sanitize}" == "1" ]]; then
    build_dir="${BUILD_DIR:-${repo_root}/build-asan}"
    build_type="${BUILD_TYPE:-RelWithDebInfo}"
    cxx_flags+=" -fsanitize=address,undefined -fno-sanitize-recover=all"
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
elif [[ "${sanitize}" == "thread" ]]; then
    build_dir="${BUILD_DIR:-${repo_root}/build-tsan}"
    build_type="${BUILD_TYPE:-RelWithDebInfo}"
    cxx_flags+=" -fsanitize=thread"
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
else
    build_dir="${BUILD_DIR:-${repo_root}/build-ci}"
fi

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DCMAKE_CXX_FLAGS="${cxx_flags}"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${sanitize}" == "thread" ]]; then
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
        -R 'WorkerPool|EventQueue|ShardedEventQueue|ShardedOracle|Determinism|ServiceTest|ArbiterTest'
    "${build_dir}/bench/perf_harness" --smoke \
        --out "${build_dir}/BENCH_PERF.json"
    # Fleet smoke under TSan: sim_shards = 8 stages every DIMM's
    # heap on the worker pool between window barriers — the main
    # cross-thread surface the sharded event core adds.
    "${build_dir}/bench/fleet_throughput" --smoke \
        --out "${build_dir}/BENCH_FLEET.json"
    exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# Observability smoke: run a short xfmsim with JSON snapshot and
# trace export enabled, then validate both emitted files (parseable,
# schema-tagged, required keys) with the schema checker.
obs_dir="${build_dir}/obs-smoke"
mkdir -p "${obs_dir}"
cat > "${obs_dir}/smoke.cfg" <<EOF
backend          = xfm
pages            = 256
workload.seconds = 0.05
xfm.sq_depth     = 8
xfm.cq_coalesce  = 2
tier.enabled     = 1
tier.spill_cold_ms = 10
stats.json       = ${obs_dir}/stats.json
trace.out        = ${obs_dir}/trace.jsonl
trace.cap        = 16384
EOF
"${build_dir}/examples/xfmsim" "${obs_dir}/smoke.cfg" > /dev/null
"${build_dir}/tools/check_obs_output" stats "${obs_dir}/stats.json"
"${build_dir}/tools/check_obs_output" trace "${obs_dir}/trace.jsonl"

# Chaos soak: the full fault plan with circuit breakers, watchdog,
# quarantine eviction, and the end-of-run page-content audit armed
# (verify = 1 makes xfmsim exit non-zero on any data corruption).
# The health checker then asserts every breaker settled — re-closed
# or persistently Failed, never stuck mid-probation.
chaos_dir="${build_dir}/chaos-smoke"
mkdir -p "${chaos_dir}"
cat "${repo_root}/configs/chaos.cfg" > "${chaos_dir}/chaos.cfg"
echo "stats.json = ${chaos_dir}/stats.json" >> "${chaos_dir}/chaos.cfg"
"${build_dir}/examples/xfmsim" "${chaos_dir}/chaos.cfg" > /dev/null
"${build_dir}/tools/check_obs_output" health "${chaos_dir}/stats.json"

# Adversary soak: the RFM-starver and covert pair against a victim
# fleet with the full QoS defense armed (configs/adversary.cfg).
# The abuse checker then asserts the detector settled: at least one
# escalation fired and no abuse monitor is stuck mid-probation.
adv_dir="${build_dir}/adversary-smoke"
mkdir -p "${adv_dir}"
cat "${repo_root}/configs/adversary.cfg" > "${adv_dir}/adversary.cfg"
echo "stats.json = ${adv_dir}/stats.json" >> "${adv_dir}/adversary.cfg"
"${build_dir}/examples/fleet_sim" --config "${adv_dir}/adversary.cfg" \
    > /dev/null
"${build_dir}/tools/check_obs_output" abuse "${adv_dir}/stats.json"

# Perf smoke: the hot-path harness at tiny sizes. Exits non-zero
# only if results diverge across worker counts (the determinism
# contract) — the measured speedup is informational and depends on
# the runner's core count, so it is never gated on.
"${build_dir}/bench/perf_harness" --smoke \
    --out "${build_dir}/BENCH_PERF.json"

# Queue-depth sweep smoke: simulated swap throughput versus async
# command-ring depth. Exits non-zero only if the restored page bytes
# diverge across depths (data integrity); the pages/sec curve is a
# measurement archived by CI, not a gate.
"${build_dir}/bench/qd_sweep" --smoke \
    --out "${build_dir}/BENCH_QD.json"

# Fleet event-core sweep smoke: the multi-tenant service replayed at
# sim_shards = 1, 2, 8. Exits non-zero only if the metric snapshots
# diverge across shard counts (the byte-identity contract); the
# events/sec curve is a measurement archived by CI, not a gate.
"${build_dir}/bench/fleet_throughput" --smoke \
    --out "${build_dir}/BENCH_FLEET.json"

# Tier-policy sweep smoke: the three demotion policies (xfm_first,
# auto, dfm_first) under working-set drift. Exits non-zero only if
# the restored page bytes diverge across policies (data integrity);
# the policy separation is a measurement archived by CI, not a gate.
"${build_dir}/bench/tier_sweep" --smoke \
    --out "${build_dir}/BENCH_TIER.json"

# Preset-dictionary sweep smoke: compression ratio and modeled
# restore latency versus channel count with `xfm.shard_dict` off and
# on. Exits non-zero only if any dict-mode page fails its byte-exact
# round-trip (asserted inside the measurement); ratios and recovery
# fractions are measurements archived by CI, not a gate.
"${build_dir}/bench/dict_sweep" --smoke \
    --out "${build_dir}/BENCH_DICT.json"

# Adversarial-interference sweep smoke: victim fault-tail latency
# across attacker intensities with the defense off and on. Exits
# non-zero only if the restored victim pages diverge across configs
# (data integrity); the tail separation is a measurement archived by
# CI, not a gate.
"${build_dir}/bench/adv_interference" --smoke \
    --out "${build_dir}/BENCH_ADV.json"
