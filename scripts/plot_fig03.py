#!/usr/bin/env python3
"""Plot Fig. 3 (cost/emissions vs years) from fig03_cost_model output.

Usage: ./build/bench/fig03_cost_model | scripts/plot_fig03.py out.png
Requires matplotlib; falls back to an ASCII table otherwise.
"""
import re
import sys


def parse(stream):
    series = {}
    rate = None
    for line in stream:
        m = re.match(r"-- promotion rate (\d+)% --", line.strip())
        if m:
            rate = int(m.group(1))
            series[rate] = []
            continue
        m = re.match(
            r"\s*([\d.]+) \|\s*([\d.]+)\s+([\d.]+)\s+([\d.]+) \|"
            r"\s*([\d.]+)\s+([\d.]+)\s+([\d.]+)", line)
        if m and rate is not None:
            series[rate].append([float(g) for g in m.groups()])
    return series


def main():
    series = parse(sys.stdin)
    if not series:
        sys.exit("no Fig. 3 rows found on stdin")
    out = sys.argv[1] if len(sys.argv) > 1 else "fig03.png"
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for rate, rows in series.items():
            print(f"promotion {rate}%: years, SFM$, PMem$ | "
                  f"SFMco2, PMemco2")
            for r in rows:
                print(f"  {r[0]:5.1f} {r[1]:6.3f} {r[3]:6.3f} | "
                      f"{r[4]:6.3f} {r[6]:6.3f}")
        return
    fig, axes = plt.subplots(1, 2, figsize=(10, 4))
    for rate, rows in series.items():
        years = [r[0] for r in rows]
        axes[0].plot(years, [r[1] for r in rows],
                     label=f"SFM @{rate}%")
        axes[0].plot(years, [r[3] for r in rows], "--",
                     label=f"DFM-PMem @{rate}%")
        axes[1].plot(years, [r[4] for r in rows],
                     label=f"SFM @{rate}%")
        axes[1].plot(years, [r[6] for r in rows], "--",
                     label=f"DFM-PMem @{rate}%")
    for ax, title in zip(axes, ["capital+opex cost", "CO2eq"]):
        ax.axhline(1.0, color="k", lw=0.8, label="DFM-DRAM")
        ax.set_xlabel("years")
        ax.set_title(f"{title} (normalised to DFM-DRAM)")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
