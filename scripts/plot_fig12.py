#!/usr/bin/env python3
"""Plot Fig. 12 (CPU fallback heatmaps) from fig12_cpu_fallbacks
output.

Usage: ./build/bench/fig12_cpu_fallbacks | scripts/plot_fig12.py out.png
"""
import re
import sys


def parse(stream):
    data = {}
    rate = None
    for line in stream:
        m = re.match(r"-- promotion rate (\d+)% --", line.strip())
        if m:
            rate = int(m.group(1))
            data[rate] = {}
            continue
        m = re.match(r"\s*(\d+) MB \|(.*)", line)
        if m and rate is not None:
            spm = int(m.group(1))
            falls = [float(x) for x in re.findall(
                r"([\d.]+)\s+[\d.]+\s+[\d.]+\s*\|", m.group(2))]
            data[rate][spm] = falls
    return data


def main():
    data = parse(sys.stdin)
    if not data:
        sys.exit("no Fig. 12 rows found on stdin")
    out = sys.argv[1] if len(sys.argv) > 1 else "fig12.png"
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for rate, rows in data.items():
            print(f"promotion {rate}%:")
            for spm, falls in sorted(rows.items()):
                cells = " ".join(f"{f:5.1f}" for f in falls)
                print(f"  {spm:2d} MB: {cells}  (1/2/3 acc per tRFC)")
        return
    fig, axes = plt.subplots(1, len(data), figsize=(9, 4))
    for ax, (rate, rows) in zip(axes, sorted(data.items())):
        spms = sorted(rows)
        grid = [rows[s] for s in spms]
        im = ax.imshow(grid, aspect="auto", cmap="viridis",
                       vmin=0, vmax=100)
        ax.set_yticks(range(len(spms)),
                      [f"{s} MB" for s in spms])
        ax.set_xticks(range(len(grid[0])),
                      [f"{i + 1} acc" for i in range(len(grid[0]))])
        ax.set_title(f"CPU fallbacks %, PR {rate}%")
        fig.colorbar(im, ax=ax)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
