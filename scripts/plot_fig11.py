#!/usr/bin/env python3
"""Plot Fig. 11 (per-workload slowdowns) from fig11_interference
output.

Usage: ./build/bench/fig11_interference | scripts/plot_fig11.py out.png
"""
import re
import sys


def parse(stream):
    apps = []
    for line in stream:
        m = re.match(
            r"(\w[\w-]*)\s+([\d.]+)%\s+([\d.]+)%\s+([\d.]+)%\s*$",
            line.strip())
        if m and m.group(1) not in ("average", "max"):
            apps.append((m.group(1), float(m.group(2)),
                         float(m.group(3)), float(m.group(4))))
    return apps


def main():
    apps = parse(sys.stdin)
    if not apps:
        sys.exit("no Fig. 11 rows found on stdin")
    out = sys.argv[1] if len(sys.argv) > 1 else "fig11.png"
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for name, cpu, lock, xfm in apps:
            print(f"{name:12s} cpu {cpu:5.2f}%  lockout {lock:5.2f}%"
                  f"  xfm {xfm:5.2f}%")
        return
    names = [a[0] for a in apps]
    x = range(len(names))
    w = 0.28
    fig, ax = plt.subplots(figsize=(9, 4))
    ax.bar([i - w for i in x], [a[1] for a in apps], w,
           label="Baseline-CPU")
    ax.bar(list(x), [a[2] for a in apps], w,
           label="Host-Lockout-NMA")
    ax.bar([i + w for i in x], [a[3] for a in apps], w, label="XFM")
    ax.set_xticks(list(x), names, rotation=30, ha="right")
    ax.set_ylabel("slowdown %")
    ax.set_title("Fig. 11: co-run slowdown by SFM interface")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
